//! The spatially-sharded evaluation engine: the inverted engine's cell
//! grid cut into `S` contiguous column stripes, each owned by one shard
//! that runs the same incremental membership maintenance over its own
//! slice of the node population (see DESIGN.md §12).
//!
//! Work is distributed over a persistent hand-rolled `WorkerPool`
//! (`S − 1` threads plus the calling thread, reused across rounds) in
//! three phases per round, with the pool join acting as the inter-phase
//! barrier:
//!
//! 1. **Step** — each shard re-places its owned nodes; a node whose
//!    predicted position left the stripe is torn down locally and routed
//!    to its new owner through a per-`(src, dst)` outbox.
//! 2. **Integrate** — each shard drains the outboxes addressed to it and
//!    claims newly-reported nodes that landed in its stripe.
//! 3. **Emit** — query slots are split into `S` contiguous chunks; each
//!    worker merges the per-shard member lists of its chunk with a
//!    sorted, deduplicating k-way merge.
//!
//! Two properties make the result *bit-identical* to
//! [`EvalEngine::Inverted`](crate::cq_engine::EvalEngine):
//!
//! * **Boundary replication**: a query overlapping several stripes is
//!   registered on every overlapping shard, and a stripe index's
//!   per-cell lists are identical to the full-width index's lists for
//!   every in-stripe cell (`QueryIndex::build_cols`). A node is
//!   therefore classified against exactly the queries the inverted
//!   engine would test it against, by exactly one shard.
//! * **Deterministic merge**: each shard's member lists are sorted node
//!   sets, shards own disjoint node sets, and the k-way merge emits the
//!   ascending union — the same sorted list the inverted engine emits,
//!   independent of thread scheduling.
//!
//! On top of thread parallelism the engine skips work *within* a round:
//! re-reported nodes are tracked at ingest, so a round whose evaluation
//! time equals the previous round's re-places only dirty, pending and
//! handed-off nodes instead of sweeping the whole store.

use std::fmt;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use lira_core::geometry::{Point, Rect};

use crate::inverted::{insert_member, remove_member, side_for, QueryIndex};
use crate::node_store::NodeStore;
use crate::query::{QueryResult, RangeQuery, UncertainResult};

/// Hard cap on the shard count: the emit merge keeps one cursor per
/// shard on the stack, and stripe parallelism past this point is far
/// beyond any sensible core count for one lane.
pub const MAX_SHARDS: usize = 32;

/// A snapshot of one shard's telemetry, exposed through
/// [`CqServer::shard_stats`](crate::cq_engine::CqServer::shard_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard position (0-based).
    pub shard: usize,
    /// Grid columns `[start, end)` of the stripe this shard owns.
    pub columns: (usize, usize),
    /// Nodes currently owned by the shard (as of the last exact round).
    pub nodes: usize,
    /// Cumulative wall time the shard spent in step/integrate phases,
    /// nanoseconds.
    pub round_ns: u64,
    /// Cumulative nodes handed off *out of* this shard on stripe
    /// crossings.
    pub handoffs: u64,
}

/// One dispatched unit: run `f(idx)`. The erased borrow is kept alive by
/// [`WorkerPool::broadcast`], which blocks until the worker signals
/// completion.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    idx: usize,
}

/// A persistent pool of worker threads, created once per engine and
/// reused by every round (the vendored-deps-only stand-in for a rayon
/// scope). Workers block on a channel between rounds, so an idle pool
/// costs nothing but memory.
struct WorkerPool {
    senders: Vec<Sender<Job>>,
    done: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each waiting for jobs.
    fn new(workers: usize) -> Self {
        let (done_tx, done) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lira-shard-{}", w + 1))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        (job.f)(job.idx);
                        if done_tx.send(()).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            done,
            handles,
        }
    }

    /// Runs `f(0), …, f(n-1)` concurrently — indices `1..n` on pool
    /// workers, index 0 on the calling thread — and blocks until all of
    /// them finish. The join doubles as the inter-phase barrier: a
    /// broadcast never overlaps the previous one.
    fn broadcast(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(n <= self.senders.len() + 1, "pool too small for {n} shards");
        // SAFETY: erasing the borrow's lifetime is sound because this
        // function does not return until every dispatched job has
        // signalled completion on the done channel, so no worker can
        // still hold `f` after the borrow ends.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let jobs = n.saturating_sub(1);
        for w in 0..jobs {
            self.senders[w]
                .send(Job {
                    f: f_erased,
                    idx: w + 1,
                })
                .expect("shard worker alive");
        }
        if n > 0 {
            f(0);
        }
        for _ in 0..jobs {
            self.done.recv().expect("shard worker finished");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels wakes every worker out of `recv`.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// A raw pointer the phase closures can share across worker threads.
/// Every use site upholds the phase protocol: during a phase each shard
/// index is accessed mutably by exactly one worker, or the pointee is
/// read-only for the whole phase; the broadcast join orders phases.
struct SendMutPtr<T>(*mut T);

impl<T> SendMutPtr<T> {
    /// The wrapped pointer. A method rather than field access so that
    /// closures capture the whole `Sync` wrapper (edition-2021 precise
    /// capture would otherwise grab the bare `*mut`, which is `!Sync`).
    fn ptr(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMutPtr<T> {}
// SAFETY: see the struct documentation — disjoint or read-only access
// per phase, phases ordered by the broadcast join.
unsafe impl<T> Send for SendMutPtr<T> {}
unsafe impl<T> Sync for SendMutPtr<T> {}

/// One stripe's complete evaluation state: the same structures the
/// inverted engine keeps globally, restricted to the nodes whose
/// predicted position falls in this shard's columns.
#[derive(Debug, Clone)]
struct Shard {
    /// Grid columns `[start, end)` owned by this shard.
    cols: Range<usize>,
    /// Stripe-restricted cell→queries index for exact evaluation.
    qindex: QueryIndex,
    /// Per *global* query slot: sorted ids of owned member nodes.
    members: Vec<Vec<u32>>,
    /// Per node: the global cell its prediction occupied at the last
    /// round, or `usize::MAX` when this shard does not own the node.
    node_cell: Vec<usize>,
    /// Per node: sorted positions of the partial queries it satisfies.
    partial_hits: Vec<Vec<u32>>,
    /// Owned node ids (unordered; `owned_pos` maps node → position).
    owned: Vec<u32>,
    /// Per node: index into `owned`, or `u32::MAX` when not owned.
    owned_pos: Vec<u32>,
    hits_scratch: Vec<u32>,
    /// Stripe-restricted Δ⊣-expanded cover for the uncertain path.
    ucover: QueryIndex,
    /// Per query slot: must/maybe members of the last uncertain round.
    must: Vec<Vec<u32>>,
    maybe: Vec<Vec<u32>>,
    /// Cumulative step+integrate wall time, nanoseconds.
    round_ns: u64,
    /// Cumulative nodes handed off out of this shard.
    handoffs: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            cols: 0..0,
            qindex: QueryIndex::unbuilt(),
            members: Vec::new(),
            node_cell: Vec::new(),
            partial_hits: Vec::new(),
            owned: Vec::new(),
            owned_pos: Vec::new(),
            hits_scratch: Vec::new(),
            ucover: QueryIndex::unbuilt(),
            must: Vec::new(),
            maybe: Vec::new(),
            round_ns: 0,
            handoffs: 0,
        }
    }

    /// Full build: claim every reported node in the stripe with one
    /// ascending store pass (pushing in node-id order keeps the member
    /// lists sorted with no per-insert search).
    fn rebuild(&mut self, queries: &[RangeQuery], store: &NodeStore, t: f64) {
        for list in &mut self.members {
            list.clear();
        }
        self.node_cell.fill(usize::MAX);
        for list in &mut self.partial_hits {
            list.clear();
        }
        self.owned.clear();
        self.owned_pos.fill(u32::MAX);
        let Shard {
            cols,
            qindex,
            members,
            node_cell,
            partial_hits,
            owned,
            owned_pos,
            ..
        } = self;
        for (n, model) in store.models().iter().enumerate() {
            let Some(model) = model else { continue };
            let p = model.predict(t);
            let (row, col) = qindex.rc_of(&p);
            if !cols.contains(&col) {
                continue;
            }
            let slot = qindex.slot(row, col);
            for &q in qindex.full_at(slot) {
                members[q as usize].push(n as u32);
            }
            for &q in qindex.partial_at(slot) {
                if queries[q as usize].range.contains(&p) {
                    members[q as usize].push(n as u32);
                    partial_hits[n].push(q);
                }
            }
            node_cell[n] = row * qindex.side() + col;
            owned_pos[n] = owned.len() as u32;
            owned.push(n as u32);
        }
    }

    /// Incremental sweep over every owned node (evaluation time moved, so
    /// every prediction must be refreshed).
    fn sweep_round(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
    ) {
        let mut k = 0;
        while k < self.owned.len() {
            let n = self.owned[k] as usize;
            if self.step_node(n, queries, store, t, routes_row, col_owner) {
                k += 1;
            } else {
                self.unown_at(k);
            }
        }
    }

    /// Work-skipping round at an unchanged evaluation time: only nodes
    /// that re-reported since the last round can change membership (same
    /// model + same `t` ⇒ same prediction ⇒ same memberships), so only
    /// they are re-placed.
    fn dirty_round(
        &mut self,
        dirty: &[u32],
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
    ) {
        for &n in dirty {
            let n = n as usize;
            if self.node_cell[n] == usize::MAX {
                continue; // owned by another shard (or still pending)
            }
            if !self.step_node(n, queries, store, t, routes_row, col_owner) {
                self.unown_at(self.owned_pos[n] as usize);
            }
        }
    }

    /// Drops the owned entry at position `k`, keeping `owned_pos` exact.
    fn unown_at(&mut self, k: usize) {
        let n = self.owned.swap_remove(k) as usize;
        self.owned_pos[n] = u32::MAX;
        if let Some(&moved) = self.owned.get(k) {
            self.owned_pos[moved as usize] = k as u32;
        }
    }

    /// Re-places one owned node at time `t`, mirroring the inverted
    /// engine's incremental logic. Returns false when the node left this
    /// stripe: its memberships here are torn down and it is routed to
    /// its new owner's inbox.
    fn step_node(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
    ) -> bool {
        let model = store.models()[n].as_ref().expect("owned node has a model");
        let p = model.predict(t);
        let (row, col) = self.qindex.rc_of(&p);
        let old_cell = self.node_cell[n];
        debug_assert_ne!(
            old_cell,
            usize::MAX,
            "stepping a node this shard does not own"
        );
        if !self.cols.contains(&col) {
            // Stripe crossing: remove every membership held here and hand
            // the node to the stripe that owns its new column.
            let Shard {
                qindex,
                members,
                node_cell,
                partial_hits,
                ..
            } = self;
            let old_slot = qindex.slot_of_cell(old_cell);
            for &q in qindex.full_at(old_slot) {
                remove_member(members, q, n as u32);
            }
            for &q in &partial_hits[n] {
                remove_member(members, q, n as u32);
            }
            partial_hits[n].clear();
            node_cell[n] = usize::MAX;
            self.handoffs += 1;
            routes_row[col_owner[col] as usize].push(n as u32);
            return false;
        }
        let cell = row * self.qindex.side() + col;
        let slot = self.qindex.slot(row, col);
        let Shard {
            qindex,
            members,
            node_cell,
            partial_hits,
            hits_scratch,
            ..
        } = self;
        if cell == old_cell {
            let partial = qindex.partial_at(slot);
            if partial.is_empty() {
                // Full-cover membership depends on the cell alone:
                // nothing can have changed for this node.
                return true;
            }
            hits_scratch.clear();
            for &q in partial {
                if queries[q as usize].range.contains(&p) {
                    hits_scratch.push(q);
                }
            }
            let old_hits = &mut partial_hits[n];
            if *hits_scratch == *old_hits {
                return true;
            }
            let (mut i, mut j) = (0, 0);
            while i < old_hits.len() || j < hits_scratch.len() {
                match (old_hits.get(i), hits_scratch.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), b) if b.is_none() || a < *b.unwrap() => {
                        remove_member(members, a, n as u32);
                        i += 1;
                    }
                    (_, Some(&b)) => {
                        insert_member(members, b, n as u32);
                        j += 1;
                    }
                    _ => unreachable!(),
                }
            }
            old_hits.clear();
            old_hits.extend_from_slice(hits_scratch);
        } else {
            let old_slot = qindex.slot_of_cell(old_cell);
            for &q in qindex.full_at(old_slot) {
                remove_member(members, q, n as u32);
            }
            for &q in &partial_hits[n] {
                remove_member(members, q, n as u32);
            }
            partial_hits[n].clear();
            for &q in qindex.full_at(slot) {
                insert_member(members, q, n as u32);
            }
            for &q in qindex.partial_at(slot) {
                if queries[q as usize].range.contains(&p) {
                    insert_member(members, q, n as u32);
                    partial_hits[n].push(q);
                }
            }
            node_cell[n] = cell;
        }
        true
    }

    /// Claims a node routed here by another shard (its new position is
    /// guaranteed to lie in this stripe).
    fn claim(&mut self, n: usize, queries: &[RangeQuery], store: &NodeStore, t: f64) {
        let model = store.models()[n].as_ref().expect("routed node has a model");
        let p = model.predict(t);
        let (row, col) = self.qindex.rc_of(&p);
        debug_assert!(self.cols.contains(&col), "node routed to the wrong stripe");
        self.insert_node(n, row, col, &p, queries);
    }

    /// Claims a newly-reported node if its prediction lands in this
    /// stripe (every shard tests every pending node; exactly one claims
    /// it).
    fn try_claim(&mut self, n: usize, queries: &[RangeQuery], store: &NodeStore, t: f64) {
        let Some(model) = store.models()[n].as_ref() else {
            return;
        };
        let p = model.predict(t);
        let (row, col) = self.qindex.rc_of(&p);
        if !self.cols.contains(&col) {
            return;
        }
        debug_assert_eq!(self.node_cell[n], usize::MAX, "pending node already owned");
        self.insert_node(n, row, col, &p, queries);
    }

    fn insert_node(&mut self, n: usize, row: usize, col: usize, p: &Point, queries: &[RangeQuery]) {
        let slot = self.qindex.slot(row, col);
        let Shard {
            qindex,
            members,
            node_cell,
            partial_hits,
            ..
        } = self;
        for &q in qindex.full_at(slot) {
            insert_member(members, q, n as u32);
        }
        for &q in qindex.partial_at(slot) {
            if queries[q as usize].range.contains(p) {
                insert_member(members, q, n as u32);
                partial_hits[n].push(q);
            }
        }
        node_cell[n] = row * qindex.side() + col;
        self.owned_pos[n] = self.owned.len() as u32;
        self.owned.push(n as u32);
    }

    /// One uncertain classification pass over the stripe. Not
    /// incremental (per-node Δ changes freely between calls), but each
    /// node is classified by exactly one shard against exactly the
    /// queries the inverted engine's full-width cover would list, with
    /// `delta_of` called at most once per node.
    fn uncertain_round(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        max_delta: f64,
        delta_of: &(dyn Fn(u32, Point) -> f64 + Sync),
    ) {
        self.must.resize_with(queries.len(), Vec::new);
        self.must.truncate(queries.len());
        self.maybe.resize_with(queries.len(), Vec::new);
        self.maybe.truncate(queries.len());
        for list in self.must.iter_mut().chain(self.maybe.iter_mut()) {
            list.clear();
        }
        for (n, model) in store.models().iter().enumerate() {
            let Some(model) = model else { continue };
            let p = model.predict(t);
            let (row, col) = self.ucover.rc_of(&p);
            if !self.cols.contains(&col) {
                continue;
            }
            let cover = self.ucover.partial_at(self.ucover.slot(row, col));
            if cover.is_empty() {
                continue;
            }
            let delta = delta_of(n as u32, p).clamp(0.0, max_delta);
            for &q in cover {
                let range = &queries[q as usize].range;
                if range.contains(&p) && range.interior_depth(&p) >= delta {
                    self.must[q as usize].push(n as u32);
                } else if range.distance_to_point(&p) <= delta {
                    self.maybe[q as usize].push(n as u32);
                }
            }
        }
    }
}

/// Merges the sorted, pairwise-disjoint per-shard lists into `out`
/// ascending. The dedup guard keeps the merge deterministic (and loudly
/// wrong in debug builds) even if the disjointness invariant were ever
/// violated.
fn merge_into(srcs: &[&[u32]], out: &mut Vec<u32>) {
    debug_assert!(srcs.len() <= MAX_SHARDS);
    let mut nonempty = 0usize;
    let mut only = 0usize;
    let mut total = 0usize;
    for (i, list) in srcs.iter().enumerate() {
        if !list.is_empty() {
            nonempty += 1;
            only = i;
            total += list.len();
        }
    }
    if nonempty == 0 {
        return;
    }
    if nonempty == 1 {
        out.extend_from_slice(srcs[only]);
        return;
    }
    out.reserve(total);
    let mut pos = [0usize; MAX_SHARDS];
    loop {
        let mut best: Option<u32> = None;
        for (i, list) in srcs.iter().enumerate() {
            if let Some(&v) = list.get(pos[i]) {
                if best.is_none_or(|b| v < b) {
                    best = Some(v);
                }
            }
        }
        let Some(b) = best else { break };
        let mut sources = 0;
        for (i, list) in srcs.iter().enumerate() {
            if list.get(pos[i]) == Some(&b) {
                pos[i] += 1;
                sources += 1;
            }
        }
        debug_assert_eq!(sources, 1, "node {b} owned by {sources} shards");
        out.push(b);
    }
}

/// All state of the sharded engine. See the module docs for the round
/// protocol and the bit-identity argument.
#[derive(Debug)]
pub(crate) struct ShardedEval {
    bounds: Rect,
    num_shards: usize,
    shards: Vec<Shard>,
    /// Per grid column: the shard owning it.
    col_owner: Vec<u32>,
    /// Whether the stripe indexes match the current query set.
    indexed: bool,
    /// Whether shard state describes a completed exact round.
    primed: bool,
    /// Bit pattern of the last exact round's evaluation time.
    last_t: u64,
    /// Nodes that re-reported since the last exact round (deduplicated
    /// via `dirty_flag`).
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    /// Nodes whose *first* report arrived since the last exact round —
    /// not yet owned by any shard.
    pending: Vec<u32>,
    /// Per `(src, dst)` handoff outboxes, reused across rounds.
    routes: Vec<Vec<Vec<u32>>>,
    /// Whether the stripe Δ⊣-covers match the current query set and Δ⊣.
    uindexed: bool,
    umax_delta: f64,
    /// Lazily-created worker pool (`num_shards − 1` threads). Not
    /// cloned: a cloned engine rebuilds its own pool on first use.
    pool: Option<WorkerPool>,
}

impl Clone for ShardedEval {
    fn clone(&self) -> Self {
        ShardedEval {
            bounds: self.bounds,
            num_shards: self.num_shards,
            shards: self.shards.clone(),
            col_owner: self.col_owner.clone(),
            indexed: self.indexed,
            primed: self.primed,
            last_t: self.last_t,
            dirty: self.dirty.clone(),
            dirty_flag: self.dirty_flag.clone(),
            pending: self.pending.clone(),
            routes: self.routes.clone(),
            uindexed: self.uindexed,
            umax_delta: self.umax_delta,
            pool: None,
        }
    }
}

impl ShardedEval {
    /// Creates empty state for a server over `bounds` with `shards`
    /// stripes (clamped to `1..=MAX_SHARDS`).
    pub(crate) fn new(bounds: Rect, num_nodes: usize, shards: usize) -> Self {
        ShardedEval {
            bounds,
            num_shards: shards.clamp(1, MAX_SHARDS),
            shards: Vec::new(),
            col_owner: Vec::new(),
            indexed: false,
            primed: false,
            last_t: 0,
            dirty: Vec::new(),
            dirty_flag: vec![false; num_nodes],
            pending: Vec::new(),
            routes: Vec::new(),
            uindexed: false,
            umax_delta: f64::NAN,
            pool: None,
        }
    }

    /// Marks every derived structure stale (query-set change).
    pub(crate) fn invalidate(&mut self) {
        self.indexed = false;
        self.primed = false;
        self.uindexed = false;
    }

    /// Ingest hook: tracks which nodes can change membership at an
    /// unchanged evaluation time. `first_report` nodes are not owned by
    /// any shard yet and are claimed at the next round's integrate
    /// phase.
    pub(crate) fn on_ingest(&mut self, node: u32, first_report: bool) {
        let n = node as usize;
        if n >= self.dirty_flag.len() {
            self.dirty_flag.resize(n + 1, false);
        }
        if first_report {
            self.pending.push(node);
        } else if !self.dirty_flag[n] {
            self.dirty_flag[n] = true;
            self.dirty.push(node);
        }
    }

    /// Per-shard telemetry snapshot.
    pub(crate) fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStats {
                shard: i,
                columns: (shard.cols.start, shard.cols.end),
                nodes: shard.owned.len(),
                round_ns: shard.round_ns,
                handoffs: shard.handoffs,
            })
            .collect()
    }

    /// (Re)builds the stripe layout and per-shard exact indexes for the
    /// current query set.
    fn build_indexes(&mut self, queries: &[RangeQuery], num_nodes: usize) {
        let side = side_for(queries.len());
        let s = self.num_shards;
        self.shards.resize_with(s, Shard::new);
        self.col_owner.clear();
        self.col_owner.resize(side, 0);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            // Contiguous, near-even stripes over the cell columns (the
            // same split for any query set of the same size, so a given
            // node deterministically maps to a shard).
            let lo = side * i / s;
            let hi = side * (i + 1) / s;
            for owner in &mut self.col_owner[lo..hi] {
                *owner = i as u32;
            }
            shard.cols = lo..hi;
            shard.qindex = QueryIndex::build_cols(&self.bounds, queries, 0.0, true, lo..hi);
            shard.members.resize_with(queries.len(), Vec::new);
            shard.members.truncate(queries.len());
            shard.node_cell.resize(num_nodes, usize::MAX);
            shard.partial_hits.resize_with(num_nodes, Vec::new);
            shard.owned_pos.resize(num_nodes, u32::MAX);
        }
        if self.dirty_flag.len() < num_nodes {
            self.dirty_flag.resize(num_nodes, false);
        }
        self.routes.resize_with(s, Vec::new);
        for row in &mut self.routes {
            row.resize_with(s, Vec::new);
        }
        self.indexed = true;
        self.primed = false;
        self.uindexed = false;
    }

    /// Clears the per-round change feeds after an exact round consumed
    /// them.
    fn clear_round_inputs(&mut self) {
        for &n in &self.dirty {
            self.dirty_flag[n as usize] = false;
        }
        self.dirty.clear();
        self.pending.clear();
    }

    /// One exact evaluation round at time `t`, writing sorted
    /// [`QueryResult`]s into `out`. With `sequential`, every phase of
    /// every shard runs on the calling thread in shard order — same
    /// state transitions, no pool.
    pub(crate) fn evaluate_into(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        out: &mut Vec<QueryResult>,
        sequential: bool,
    ) {
        if !self.indexed {
            self.build_indexes(queries, store.len());
        }
        let s = self.num_shards;
        let rebuild = !self.primed;
        let same_t = self.primed && self.last_t == t.to_bits();
        let nq = queries.len();
        out.resize_with(nq, QueryResult::default);
        out.truncate(nq);

        let pool: Option<&WorkerPool> = if sequential || s == 1 {
            None
        } else {
            Some(self.pool.get_or_insert_with(|| WorkerPool::new(s - 1)))
        };
        let run = |f: &(dyn Fn(usize) + Sync)| match pool {
            Some(p) => p.broadcast(s, f),
            None => {
                for i in 0..s {
                    f(i);
                }
            }
        };

        let shards = SendMutPtr(self.shards.as_mut_ptr());
        let routes = SendMutPtr(self.routes.as_mut_ptr());
        let out_ptr = SendMutPtr(out.as_mut_ptr());
        let col_owner = &self.col_owner;
        let dirty = &self.dirty;
        let pending = &self.pending;

        // Phase 1 — step: each worker exclusively owns shard i and
        // outbox row i.
        run(&|i: usize| {
            // SAFETY: exclusive per-index access, see SendMutPtr.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let routes_row = unsafe { &mut *routes.ptr().add(i) };
            let start = Instant::now();
            for outbox in routes_row.iter_mut() {
                outbox.clear();
            }
            if rebuild {
                shard.rebuild(queries, store, t);
            } else if same_t {
                shard.dirty_round(dirty, queries, store, t, routes_row, col_owner);
            } else {
                shard.sweep_round(queries, store, t, routes_row, col_owner);
            }
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Phase 2 — integrate: outboxes are read-only now; each worker
        // drains the column addressed to its shard and claims pending
        // first reports that landed in its stripe.
        run(&|i: usize| {
            // SAFETY: shard i mutable by this worker only; routes shared
            // read-only across workers for the whole phase.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let start = Instant::now();
            if !rebuild {
                for src in 0..s {
                    let row: &Vec<Vec<u32>> = unsafe { &*routes.ptr().add(src) };
                    for &n in &row[i] {
                        shard.claim(n as usize, queries, store, t);
                    }
                }
                for &n in pending {
                    shard.try_claim(n as usize, queries, store, t);
                }
            }
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Phase 3 — emit: shards are read-only; each worker merges the
        // member lists of its contiguous query chunk.
        run(&|i: usize| {
            // SAFETY: shards read-only for the whole phase; out slots
            // are written by exactly one worker (disjoint chunks).
            let shards_ro: &[Shard] = unsafe { std::slice::from_raw_parts(shards.ptr(), s) };
            let mut srcs: Vec<&[u32]> = vec![&[]; s];
            let chunk = nq * i / s..nq * (i + 1) / s;
            for (q, query) in queries.iter().enumerate().take(chunk.end).skip(chunk.start) {
                let slot = unsafe { &mut *out_ptr.ptr().add(q) };
                slot.query = query.id;
                slot.nodes.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.members[q];
                }
                merge_into(&srcs, &mut slot.nodes);
            }
        });

        self.primed = true;
        self.last_t = t.to_bits();
        self.clear_round_inputs();
    }

    /// One uncertain evaluation round: every shard classifies its
    /// stripe's nodes against the Δ⊣-expanded covers, then the per-shard
    /// must/maybe lists are merged per query. Stateless between rounds
    /// (like the inverted engine's uncertain path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_uncertain_into(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        max_delta: f64,
        delta_of: &(dyn Fn(u32, Point) -> f64 + Sync),
        out: &mut Vec<UncertainResult>,
        sequential: bool,
    ) {
        if !self.indexed {
            self.build_indexes(queries, store.len());
        }
        if !self.uindexed || self.umax_delta.to_bits() != max_delta.to_bits() {
            for shard in &mut self.shards {
                shard.ucover = QueryIndex::build_cols(
                    &self.bounds,
                    queries,
                    max_delta,
                    false,
                    shard.cols.clone(),
                );
            }
            self.umax_delta = max_delta;
            self.uindexed = true;
        }
        let s = self.num_shards;
        let nq = queries.len();
        out.resize_with(nq, UncertainResult::default);
        out.truncate(nq);

        let pool: Option<&WorkerPool> = if sequential || s == 1 {
            None
        } else {
            Some(self.pool.get_or_insert_with(|| WorkerPool::new(s - 1)))
        };
        let run = |f: &(dyn Fn(usize) + Sync)| match pool {
            Some(p) => p.broadcast(s, f),
            None => {
                for i in 0..s {
                    f(i);
                }
            }
        };

        let shards = SendMutPtr(self.shards.as_mut_ptr());
        let out_ptr = SendMutPtr(out.as_mut_ptr());

        // Classify: each worker exclusively owns shard i.
        run(&|i: usize| {
            // SAFETY: exclusive per-index access, see SendMutPtr.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let start = Instant::now();
            shard.uncertain_round(queries, store, t, max_delta, delta_of);
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Emit: shards read-only, disjoint query chunks per worker.
        run(&|i: usize| {
            // SAFETY: see the exact emit phase.
            let shards_ro: &[Shard] = unsafe { std::slice::from_raw_parts(shards.ptr(), s) };
            let mut srcs: Vec<&[u32]> = vec![&[]; s];
            let chunk = nq * i / s..nq * (i + 1) / s;
            for (q, query) in queries.iter().enumerate().take(chunk.end).skip(chunk.start) {
                let slot = unsafe { &mut *out_ptr.ptr().add(q) };
                slot.query = query.id;
                slot.must.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.must[q];
                }
                merge_into(&srcs, &mut slot.must);
                slot.maybe.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.maybe[q];
                }
                merge_into(&srcs, &mut slot.maybe);
            }
        });
    }
}

// The simulation pipeline moves whole servers (and therefore engines)
// into per-policy lane threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardedEval>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_empty_single_and_many() {
        let mut out = Vec::new();
        merge_into(&[&[], &[]], &mut out);
        assert!(out.is_empty());
        merge_into(&[&[1, 5, 9], &[]], &mut out);
        assert_eq!(out, vec![1, 5, 9]);
        out.clear();
        merge_into(&[&[2, 8], &[1, 5, 9], &[0, 10]], &mut out);
        assert_eq!(out, vec![0, 1, 2, 5, 8, 9, 10]);
    }

    #[test]
    fn pool_broadcast_runs_every_index_and_reuses_workers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        pool.broadcast(4, &|i| {
            sum.fetch_add(1 << (8 * i), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 0x01010101);
        // Reuse across rounds: same workers, fresh closure.
        for _ in 0..100 {
            pool.broadcast(4, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 0x01010101 + 600);
    }

    #[test]
    fn pool_smaller_broadcasts_are_fine() {
        let pool = WorkerPool::new(7);
        let hits = std::sync::Mutex::new(Vec::new());
        pool.broadcast(2, &|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }
}
