//! A TPR-tree (time-parameterized R-tree, Šaltenis et al., SIGMOD 2000):
//! the update-efficient moving-object index the paper names as a natural
//! companion for LIRA ("can be employed in conjunction with any CQ systems
//! that employ update-efficient index structures, such as the TPR-tree").
//!
//! Entries are moving points — a reference position plus a velocity — and
//! internal nodes keep *time-parameterized bounding rectangles* (TPBRs): a
//! spatial rectangle at a reference time together with velocity bounds, so
//! the node's bound at any future time is available without touching the
//! leaves. Range queries at time `t` prune with the TPBR extrapolated to
//! `t`; insertion minimizes integrated area enlargement over a horizon `H`.

use lira_core::geometry::{Point, Rect};
use std::collections::HashMap;

/// Maximum entries per node.
const MAX_FANOUT: usize = 16;
/// Minimum entries per node after a split.
const MIN_FANOUT: usize = MAX_FANOUT / 4;

/// A moving point: position at `time`, constant velocity thereafter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingPoint {
    pub node: u32,
    pub time: f64,
    pub origin: Point,
    pub velocity: (f64, f64),
}

impl MovingPoint {
    /// Predicted position at time `t`.
    #[inline]
    pub fn position_at(&self, t: f64) -> Point {
        let dt = t - self.time;
        Point::new(
            self.origin.x + self.velocity.0 * dt,
            self.origin.y + self.velocity.1 * dt,
        )
    }
}

/// A time-parameterized bounding rectangle: spatial bounds at `time`, plus
/// velocity bounds so the rectangle can be extrapolated conservatively.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tpbr {
    time: f64,
    min: Point,
    max: Point,
    vmin: (f64, f64),
    vmax: (f64, f64),
}

impl Tpbr {
    fn from_point(p: &MovingPoint) -> Self {
        Tpbr {
            time: p.time,
            min: p.origin,
            max: p.origin,
            vmin: p.velocity,
            vmax: p.velocity,
        }
    }

    /// The (conservative) spatial bounds at time `t ≥ self.time`. For
    /// `t < self.time` the velocity bounds are applied in reverse, which
    /// remains conservative for points inserted at or before `self.time`.
    fn rect_at(&self, t: f64) -> Rect {
        let dt = t - self.time;
        let (lo_vx, hi_vx, lo_vy, hi_vy) = if dt >= 0.0 {
            (self.vmin.0, self.vmax.0, self.vmin.1, self.vmax.1)
        } else {
            (self.vmax.0, self.vmin.0, self.vmax.1, self.vmin.1)
        };
        Rect::new(
            Point::new(self.min.x + lo_vx * dt, self.min.y + lo_vy * dt),
            Point::new(self.max.x + hi_vx * dt, self.max.y + hi_vy * dt),
        )
    }

    /// Expands to cover `other`, re-anchoring both at the later reference
    /// time so the merged TPBR stays conservative.
    fn merge(&self, other: &Tpbr) -> Tpbr {
        let t = self.time.max(other.time);
        let a = self.rect_at(t);
        let b = other.rect_at(t);
        Tpbr {
            time: t,
            min: Point::new(a.min.x.min(b.min.x), a.min.y.min(b.min.y)),
            max: Point::new(a.max.x.max(b.max.x), a.max.y.max(b.max.y)),
            vmin: (self.vmin.0.min(other.vmin.0), self.vmin.1.min(other.vmin.1)),
            vmax: (self.vmax.0.max(other.vmax.0), self.vmax.1.max(other.vmax.1)),
        }
    }

    /// Integrated area over `[t0, t0 + horizon]` (the TPR-tree's insertion
    /// objective), approximated by Simpson's rule — exact enough for
    /// subtree choice, cheap enough for the hot path.
    fn integrated_area(&self, t0: f64, horizon: f64) -> f64 {
        let a0 = self.rect_at(t0).area();
        let am = self.rect_at(t0 + horizon / 2.0).area();
        let a1 = self.rect_at(t0 + horizon).area();
        (a0 + 4.0 * am + a1) / 6.0
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf(Vec<MovingPoint>),
    Internal(Vec<(Tpbr, usize)>),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    parent: Option<usize>,
}

/// The TPR-tree index over moving points.
#[derive(Debug, Clone)]
pub struct TprTree {
    nodes: Vec<Node>,
    root: usize,
    /// Node-id → leaf index, for O(1) bottom-up deletes on update.
    locations: HashMap<u32, usize>,
    /// Insertion horizon `H`, seconds.
    horizon: f64,
    len: usize,
}

impl TprTree {
    /// Creates an empty tree with the given insertion horizon (seconds);
    /// the horizon should match the expected time between re-indexing, a
    /// few tens of seconds for second-granularity position updates.
    pub fn new(horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        TprTree {
            nodes: vec![Node {
                kind: NodeKind::Leaf(Vec::new()),
                parent: None,
            }],
            root: 0,
            locations: HashMap::new(),
            horizon,
            len: 0,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces the moving point for `point.node`.
    pub fn update(&mut self, point: MovingPoint) {
        self.remove(point.node);
        let leaf = self.choose_leaf(&Tpbr::from_point(&point), point.time);
        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf(pts) => pts.push(point),
            NodeKind::Internal(_) => unreachable!("choose_leaf returns a leaf"),
        }
        self.locations.insert(point.node, leaf);
        self.len += 1;
        if self.leaf_len(leaf) > MAX_FANOUT {
            self.split(leaf);
        } else {
            self.refresh_upward(leaf);
        }
    }

    /// Removes a node's point, if present. Underfull leaves are tolerated
    /// (the classic TPR-tree condenses; for LIRA's workload every node
    /// re-reports within the horizon, so tolerating underflow keeps deletes
    /// O(1) — the update-efficiency the paper cares about).
    pub fn remove(&mut self, node: u32) -> bool {
        let Some(leaf) = self.locations.remove(&node) else {
            return false;
        };
        let NodeKind::Leaf(pts) = &mut self.nodes[leaf].kind else {
            unreachable!("locations maps to leaves");
        };
        let before = pts.len();
        pts.retain(|p| p.node != node);
        debug_assert_eq!(pts.len() + 1, before, "location map out of sync");
        self.len -= 1;
        self.refresh_upward(leaf);
        // Removing the last point can leave an empty internal root; reset
        // to a fresh leaf so the tree is structurally valid again.
        if self.len == 0 {
            self.nodes.clear();
            self.nodes.push(Node {
                kind: NodeKind::Leaf(Vec::new()),
                parent: None,
            });
            self.root = 0;
        }
        true
    }

    /// All node ids whose predicted position at `t` lies in `range`.
    pub fn query(&self, range: &Rect, t: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(range, t, &mut out);
        out
    }

    /// `query`, reusing an output buffer. Each node id is appended at most
    /// once: [`update`](Self::update) removes any previous entry first, so
    /// a node lives in exactly one leaf (the `MovingIndex` uniqueness
    /// contract).
    pub fn query_into(&self, range: &Rect, t: f64, out: &mut Vec<u32>) {
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx].kind {
                NodeKind::Leaf(pts) => {
                    for p in pts {
                        if range.contains(&p.position_at(t)) {
                            out.push(p.node);
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    for (tpbr, child) in children {
                        if tpbr.rect_at(t).intersects(range) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
    }

    /// The stored moving point for `node`, if any.
    pub fn get(&self, node: u32) -> Option<&MovingPoint> {
        let leaf = *self.locations.get(&node)?;
        match &self.nodes[leaf].kind {
            NodeKind::Leaf(pts) => pts.iter().find(|p| p.node == node),
            NodeKind::Internal(_) => None,
        }
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Internal(children) => {
                    idx = children.first().expect("internal nodes are non-empty").1;
                    h += 1;
                }
            }
        }
    }

    fn leaf_len(&self, leaf: usize) -> usize {
        match &self.nodes[leaf].kind {
            NodeKind::Leaf(pts) => pts.len(),
            NodeKind::Internal(_) => 0,
        }
    }

    /// The TPBR covering a node's current entries.
    fn node_tpbr(&self, idx: usize) -> Option<Tpbr> {
        match &self.nodes[idx].kind {
            NodeKind::Leaf(pts) => {
                let mut it = pts.iter();
                let first = Tpbr::from_point(it.next()?);
                Some(it.fold(first, |acc, p| acc.merge(&Tpbr::from_point(p))))
            }
            NodeKind::Internal(children) => {
                let mut it = children.iter();
                let first = it.next()?.0;
                Some(it.fold(first, |acc, (t, _)| acc.merge(t)))
            }
        }
    }

    /// Descends from the root picking the child whose TPBR needs the least
    /// integrated-area enlargement over the horizon.
    fn choose_leaf(&self, entry: &Tpbr, now: f64) -> usize {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx].kind {
                NodeKind::Leaf(_) => return idx,
                NodeKind::Internal(children) => {
                    debug_assert!(!children.is_empty());
                    let mut best = children[0].1;
                    let mut best_cost = f64::INFINITY;
                    for (tpbr, child) in children {
                        let before = tpbr.integrated_area(now, self.horizon);
                        let after = tpbr.merge(entry).integrated_area(now, self.horizon);
                        let cost = after - before;
                        if cost < best_cost {
                            best_cost = cost;
                            best = *child;
                        }
                    }
                    idx = best;
                }
            }
        }
    }

    /// Splits an overfull leaf, propagating splits upward as needed.
    fn split(&mut self, idx: usize) {
        // Partition entries by sorting on the coordinate (position at the
        // horizon midpoint) with the larger spread — a linear-cost split in
        // the spirit of the original TPR-tree's R*-derived algorithm.
        let mid_t = self.entry_time(idx) + self.horizon / 2.0;
        let new_idx = self.nodes.len();
        let parent = self.nodes[idx].parent;

        let sibling_kind = match &mut self.nodes[idx].kind {
            NodeKind::Leaf(pts) => {
                let key = |p: &MovingPoint| p.position_at(mid_t);
                let xs: Vec<f64> = pts.iter().map(|p| key(p).x).collect();
                let ys: Vec<f64> = pts.iter().map(|p| key(p).y).collect();
                let split_x = spread(&xs) >= spread(&ys);
                pts.sort_by(|a, b| {
                    let (ka, kb) = (key(a), key(b));
                    let (va, vb) = if split_x { (ka.x, kb.x) } else { (ka.y, kb.y) };
                    va.partial_cmp(&vb).expect("finite positions")
                });
                let tail = pts.split_off(pts.len() - MIN_FANOUT.max(pts.len() / 2));
                NodeKind::Leaf(tail)
            }
            NodeKind::Internal(children) => {
                let key = |c: &(Tpbr, usize)| c.0.rect_at(mid_t).center();
                let xs: Vec<f64> = children.iter().map(|c| key(c).x).collect();
                let ys: Vec<f64> = children.iter().map(|c| key(c).y).collect();
                let split_x = spread(&xs) >= spread(&ys);
                children.sort_by(|a, b| {
                    let (ka, kb) = (key(a), key(b));
                    let (va, vb) = if split_x { (ka.x, kb.x) } else { (ka.y, kb.y) };
                    va.partial_cmp(&vb).expect("finite positions")
                });
                let tail = children.split_off(children.len() - MIN_FANOUT.max(children.len() / 2));
                NodeKind::Internal(tail)
            }
        };
        self.nodes.push(Node {
            kind: sibling_kind,
            parent,
        });
        self.fix_children_links(new_idx);
        self.fix_locations(new_idx);

        match parent {
            Some(p) => {
                let tpbr_old = self.node_tpbr(idx).expect("non-empty after split");
                let tpbr_new = self.node_tpbr(new_idx).expect("non-empty after split");
                let NodeKind::Internal(children) = &mut self.nodes[p].kind else {
                    unreachable!("parents are internal");
                };
                for (t, c) in children.iter_mut() {
                    if *c == idx {
                        *t = tpbr_old;
                    }
                }
                children.push((tpbr_new, new_idx));
                if children.len() > MAX_FANOUT {
                    self.split(p);
                } else {
                    self.refresh_upward(p);
                }
            }
            None => {
                // Split the root: grow the tree by one level.
                let tpbr_old = self.node_tpbr(idx).expect("non-empty");
                let tpbr_new = self.node_tpbr(new_idx).expect("non-empty");
                let new_root = self.nodes.len();
                self.nodes.push(Node {
                    kind: NodeKind::Internal(vec![(tpbr_old, idx), (tpbr_new, new_idx)]),
                    parent: None,
                });
                self.nodes[idx].parent = Some(new_root);
                self.nodes[new_idx].parent = Some(new_root);
                self.root = new_root;
            }
        }
    }

    /// A representative reference time for a node's entries.
    fn entry_time(&self, idx: usize) -> f64 {
        match &self.nodes[idx].kind {
            NodeKind::Leaf(pts) => pts.iter().map(|p| p.time).fold(0.0, f64::max),
            NodeKind::Internal(children) => {
                children.iter().map(|(t, _)| t.time).fold(0.0, f64::max)
            }
        }
    }

    /// After moving children into a fresh internal node, update their
    /// parent pointers.
    fn fix_children_links(&mut self, idx: usize) {
        if let NodeKind::Internal(children) = &self.nodes[idx].kind {
            let kids: Vec<usize> = children.iter().map(|(_, c)| *c).collect();
            for k in kids {
                self.nodes[k].parent = Some(idx);
            }
        }
    }

    /// After moving points into a fresh leaf, update the location map.
    fn fix_locations(&mut self, idx: usize) {
        if let NodeKind::Leaf(pts) = &self.nodes[idx].kind {
            let ids: Vec<u32> = pts.iter().map(|p| p.node).collect();
            for id in ids {
                self.locations.insert(id, idx);
            }
        }
    }

    /// Recomputes TPBRs on the path from `idx` to the root.
    fn refresh_upward(&mut self, mut idx: usize) {
        while let Some(parent) = self.nodes[idx].parent {
            let tpbr = self.node_tpbr(idx);
            let NodeKind::Internal(children) = &mut self.nodes[parent].kind else {
                unreachable!("parents are internal");
            };
            match tpbr {
                Some(t) => {
                    for (ct, c) in children.iter_mut() {
                        if *c == idx {
                            *ct = t;
                        }
                    }
                }
                None => {
                    // The child emptied out: drop it from the parent.
                    children.retain(|(_, c)| *c != idx);
                }
            }
            idx = parent;
        }
    }

    /// Validates structural invariants (test/debug support): parent links,
    /// location map, fanout bounds, and TPBR containment at sampled times.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx].kind {
                NodeKind::Leaf(pts) => {
                    count += pts.len();
                    assert!(pts.len() <= MAX_FANOUT, "leaf overflow");
                    for p in pts {
                        assert_eq!(self.locations.get(&p.node), Some(&idx), "location map");
                    }
                }
                NodeKind::Internal(children) => {
                    assert!(!children.is_empty(), "empty internal node");
                    assert!(children.len() <= MAX_FANOUT, "internal overflow");
                    for (tpbr, child) in children {
                        assert_eq!(self.nodes[*child].parent, Some(idx), "parent link");
                        // Stored TPBR must cover the child's recomputed one
                        // at representative times.
                        if let Some(actual) = self.node_tpbr(*child) {
                            for dt in [0.0, self.horizon / 2.0, self.horizon] {
                                let t = tpbr.time.max(actual.time) + dt;
                                let outer = tpbr.rect_at(t);
                                let inner = actual.rect_at(t);
                                assert!(
                                    outer.min.x <= inner.min.x + 1e-6
                                        && outer.min.y <= inner.min.y + 1e-6
                                        && outer.max.x >= inner.max.x - 1e-6
                                        && outer.max.y >= inner.max.y - 1e-6,
                                    "TPBR does not cover child at t = {t}"
                                );
                            }
                        }
                        stack.push(*child);
                    }
                }
            }
        }
        assert_eq!(count, self.len, "size bookkeeping");
        assert_eq!(self.locations.len(), self.len, "location map size");
    }
}

fn spread(values: &[f64]) -> f64 {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mp(node: u32, t: f64, x: f64, y: f64, vx: f64, vy: f64) -> MovingPoint {
        MovingPoint {
            node,
            time: t,
            origin: Point::new(x, y),
            velocity: (vx, vy),
        }
    }

    #[test]
    fn tpbr_extrapolation() {
        let t = Tpbr::from_point(&mp(0, 10.0, 100.0, 200.0, 2.0, -1.0));
        let r = t.rect_at(15.0);
        assert_eq!(r.min, Point::new(110.0, 195.0));
        assert_eq!(r.max, Point::new(110.0, 195.0));
    }

    #[test]
    fn tpbr_merge_is_conservative() {
        let a = Tpbr::from_point(&mp(0, 0.0, 0.0, 0.0, 1.0, 0.0));
        let b = Tpbr::from_point(&mp(1, 0.0, 10.0, 10.0, -1.0, 2.0));
        let m = a.merge(&b);
        for t in [0.0, 5.0, 20.0] {
            let r = m.rect_at(t);
            for p in [
                mp(0, 0.0, 0.0, 0.0, 1.0, 0.0).position_at(t),
                mp(1, 0.0, 10.0, 10.0, -1.0, 2.0).position_at(t),
            ] {
                assert!(r.contains_closed(&p), "t = {t}, p = {p}");
            }
        }
    }

    #[test]
    fn insert_query_basics() {
        let mut tree = TprTree::new(60.0);
        tree.update(mp(1, 0.0, 10.0, 10.0, 1.0, 0.0));
        tree.update(mp(2, 0.0, 500.0, 500.0, 0.0, 0.0));
        assert_eq!(tree.len(), 2);
        // At t = 0: node 1 in the corner box.
        let hits = tree.query(&Rect::from_coords(0.0, 0.0, 50.0, 50.0), 0.0);
        assert_eq!(hits, vec![1]);
        // At t = 100: node 1 moved to x = 110, out of the box.
        let hits = tree.query(&Rect::from_coords(0.0, 0.0, 50.0, 50.0), 100.0);
        assert!(hits.is_empty());
        let hits = tree.query(&Rect::from_coords(100.0, 0.0, 150.0, 50.0), 100.0);
        assert_eq!(hits, vec![1]);
        tree.check_invariants();
    }

    #[test]
    fn update_replaces_previous_point() {
        let mut tree = TprTree::new(60.0);
        tree.update(mp(7, 0.0, 10.0, 10.0, 0.0, 0.0));
        tree.update(mp(7, 50.0, 900.0, 900.0, 0.0, 0.0));
        assert_eq!(tree.len(), 1);
        assert!(tree
            .query(&Rect::from_coords(0.0, 0.0, 50.0, 50.0), 50.0)
            .is_empty());
        assert_eq!(
            tree.query(&Rect::from_coords(800.0, 800.0, 1000.0, 1000.0), 50.0),
            vec![7]
        );
        assert_eq!(tree.get(7).unwrap().origin, Point::new(900.0, 900.0));
    }

    #[test]
    fn remove_and_empty() {
        let mut tree = TprTree::new(60.0);
        assert!(!tree.remove(3));
        tree.update(mp(3, 0.0, 1.0, 1.0, 0.0, 0.0));
        assert!(tree.remove(3));
        assert!(tree.is_empty());
        assert!(tree.get(3).is_none());
        tree.check_invariants();
    }

    #[test]
    fn removing_everything_resets_cleanly() {
        let mut tree = TprTree::new(60.0);
        let mut rng = SmallRng::seed_from_u64(8);
        for i in 0..100u32 {
            tree.update(mp(
                i,
                0.0,
                rng.gen_range(0.0..500.0),
                rng.gen_range(0.0..500.0),
                0.0,
                0.0,
            ));
        }
        assert!(tree.height() > 1, "tree grew past one leaf");
        for i in 0..100u32 {
            assert!(tree.remove(i));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree
            .query(&Rect::from_coords(0.0, 0.0, 500.0, 500.0), 0.0)
            .is_empty());
        tree.check_invariants();
        // And the tree is fully usable again.
        tree.update(mp(7, 0.0, 10.0, 10.0, 0.0, 0.0));
        assert_eq!(
            tree.query(&Rect::from_coords(0.0, 0.0, 20.0, 20.0), 0.0),
            vec![7]
        );
        tree.check_invariants();
    }

    #[test]
    fn grows_and_splits_correctly() {
        let mut tree = TprTree::new(60.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..500u32 {
            tree.update(mp(
                i,
                0.0,
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(-15.0..15.0),
                rng.gen_range(-15.0..15.0),
            ));
        }
        assert_eq!(tree.len(), 500);
        assert!(tree.height() >= 3, "height {}", tree.height());
        tree.check_invariants();
    }

    #[test]
    fn query_matches_brute_force_over_time() {
        let mut tree = TprTree::new(30.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut points = Vec::new();
        for i in 0..300u32 {
            let p = mp(
                i,
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..2000.0),
                rng.gen_range(0.0..2000.0),
                rng.gen_range(-20.0..20.0),
                rng.gen_range(-20.0..20.0),
            );
            tree.update(p);
            points.push(p);
        }
        for t in [10.0, 25.0, 60.0, 120.0] {
            for _ in 0..10 {
                let x = rng.gen_range(0.0..1500.0);
                let y = rng.gen_range(0.0..1500.0);
                let range = Rect::from_coords(x, y, x + 500.0, y + 500.0);
                let mut got = tree.query(&range, t);
                got.sort_unstable();
                let mut want: Vec<u32> = points
                    .iter()
                    .filter(|p| range.contains(&p.position_at(t)))
                    .map(|p| p.node)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "t = {t}, range = {range}");
            }
        }
    }

    #[test]
    fn interleaved_updates_stay_consistent() {
        let mut tree = TprTree::new(30.0);
        let mut rng = SmallRng::seed_from_u64(23);
        let mut latest: HashMap<u32, MovingPoint> = HashMap::new();
        for step in 0..3000 {
            let id = rng.gen_range(0..150u32);
            if rng.gen_bool(0.15) {
                tree.remove(id);
                latest.remove(&id);
            } else {
                let p = mp(
                    id,
                    step as f64 * 0.1,
                    rng.gen_range(0.0..1000.0),
                    rng.gen_range(0.0..1000.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                );
                tree.update(p);
                latest.insert(id, p);
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), latest.len());
        let t = 400.0;
        let range = Rect::from_coords(200.0, 200.0, 800.0, 800.0);
        let mut got = tree.query(&range, t);
        got.sort_unstable();
        let mut want: Vec<u32> = latest
            .values()
            .filter(|p| range.contains(&p.position_at(t)))
            .map(|p| p.node)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_bad_horizon() {
        TprTree::new(0.0);
    }
}
