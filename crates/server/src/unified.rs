//! The unified evaluation engine: one SoA-backed, dirty-tracking core
//! for every shard count, with `shards = 1` as the degenerate
//! (single-stripe, no-pool) case (DESIGN.md §13).
//!
//! The engine partitions the cell grid of `QueryIndex` into `S`
//! contiguous column stripes, each owned by one shard that runs the same
//! incremental membership maintenance over its own slice of the node
//! population. Per-query member lists are per-shard; per-*node* state
//! (current cell, partial hits, owned-list position) is global — each
//! node is owned by exactly one shard, so the arrays are written
//! disjointly and cost `O(nodes)` once instead of `O(nodes × shards)`.
//!
//! A round is at most three phases over a persistent hand-rolled
//! `WorkerPool` (`S − 1` threads plus the calling thread, reused
//! across rounds), with the pool join acting as the inter-phase barrier
//! — and each phase is dispatched *only to the shards with work*:
//!
//! 1. **Step** — re-reported (dirty) nodes are bucketed by owning shard
//!    on the coordinating thread; each active shard re-places its
//!    bucket (or sweeps all owned nodes when the evaluation time
//!    advanced), routing stripe-leavers to per-`(src, dst)` outboxes.
//!    Shards with nothing dirty and nothing owned are never woken.
//! 2. **Integrate** — pending first reports are pre-routed to their
//!    destination stripe by the coordinator; each *receiving* shard
//!    drains its inbound outboxes and claims its pending arrivals. The
//!    phase is skipped outright when nothing crossed a stripe and
//!    nothing is pending.
//! 3. **Emit** — per-shard disjoint sorted member lists are k-way
//!    merged into the caller's buffers (a plain copy at `shards = 1`).
//!
//! Two properties make the result *bit-identical* across shard counts
//! (and to the retired single-index inverted engine):
//!
//! * **Boundary replication**: a query overlapping several stripes is
//!   registered on every overlapping shard, and a stripe index's
//!   per-cell lists are identical to the full-width index's lists for
//!   every in-stripe cell (`QueryIndex::build_cols`). A node is
//!   therefore classified against exactly the same queries at any shard
//!   count, by exactly one shard.
//! * **Deterministic merge**: each shard's member lists are sorted node
//!   sets, shards own disjoint node sets, and the k-way merge emits the
//!   ascending union, independent of thread scheduling.
//!
//! Dirty tracking is where the single-core win lives: a round at an
//! unchanged evaluation time re-places only re-reported + handed-off +
//! pending nodes — `O(churn)`, not `O(nodes)`. Rounds at a new
//! evaluation time sweep every owned node (every prediction moved).
//! `UnifiedEval::set_dirty_tracking(false)` disables the
//! unchanged-time shortcut, reproducing the retired inverted engine's
//! every-node incremental round — the benchmarks' baseline.

use std::fmt;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use lira_core::geometry::{Point, Rect};

use crate::node_store::NodeStore;
use crate::qindex::{axis_cell, insert_member, remove_member, side_for, QueryIndex};
use crate::query::{QueryResult, RangeQuery, UncertainResult};

/// Hard cap on the shard count: the emit merge keeps one cursor per
/// shard on the stack, and stripe parallelism past this point is far
/// beyond any sensible core count for one lane.
pub const MAX_SHARDS: usize = 32;

/// Sentinel for "this node is owned by no shard" in the global per-node
/// arrays (`side ≤ 256`, so real cell ids stay far below it).
const UNOWNED: u32 = u32::MAX;

/// A snapshot of one shard's telemetry, exposed through
/// [`CqServer::shard_stats`](crate::cq_engine::CqServer::shard_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard position (0-based).
    pub shard: usize,
    /// Grid columns `[start, end)` of the stripe this shard owns.
    pub columns: (usize, usize),
    /// Nodes currently owned by the shard (as of the last exact round).
    pub nodes: usize,
    /// Cumulative wall time the shard spent in step/integrate phases,
    /// nanoseconds.
    pub round_ns: u64,
    /// Cumulative nodes handed off *out of* this shard on stripe
    /// crossings.
    pub handoffs: u64,
}

/// One dispatched unit: run `f(idx)`. The erased borrow is kept alive by
/// [`WorkerPool::run_on`], which blocks until the worker signals
/// completion.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    idx: usize,
}

/// A persistent pool of worker threads, created once per engine and
/// reused by every round (the vendored-deps-only stand-in for a rayon
/// scope). Workers block on a channel between rounds, so an idle pool
/// costs nothing but memory.
struct WorkerPool {
    senders: Vec<Sender<Job>>,
    done: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each waiting for jobs.
    fn new(workers: usize) -> Self {
        let (done_tx, done) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lira-shard-{}", w + 1))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        (job.f)(job.idx);
                        if done_tx.send(()).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            done,
            handles,
        }
    }

    /// Runs `f(i)` concurrently for every index in `targets` — the tail
    /// on pool workers, the head on the calling thread — and blocks
    /// until all of them finish. The join doubles as the inter-phase
    /// barrier: a dispatch never overlaps the previous one. Idle shards
    /// are simply not in `targets` and their workers never wake.
    fn run_on(&self, targets: &[usize], f: &(dyn Fn(usize) + Sync)) {
        let Some((&head, tail)) = targets.split_first() else {
            return;
        };
        assert!(
            tail.len() <= self.senders.len(),
            "pool too small for {} shards",
            targets.len()
        );
        // SAFETY: erasing the borrow's lifetime is sound because this
        // function does not return until every dispatched job has
        // signalled completion on the done channel, so no worker can
        // still hold `f` after the borrow ends.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        for (w, &idx) in tail.iter().enumerate() {
            self.senders[w]
                .send(Job { f: f_erased, idx })
                .expect("shard worker alive");
        }
        f(head);
        for _ in tail {
            self.done.recv().expect("shard worker finished");
        }
    }

    /// Runs `f(0), …, f(n-1)` concurrently (a full-width
    /// [`run_on`](Self::run_on) without the target-list allocation).
    fn broadcast(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(n <= self.senders.len() + 1, "pool too small for {n} shards");
        // SAFETY: as in `run_on` — the join below outlives every worker's
        // use of `f`.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let jobs = n.saturating_sub(1);
        for w in 0..jobs {
            self.senders[w]
                .send(Job {
                    f: f_erased,
                    idx: w + 1,
                })
                .expect("shard worker alive");
        }
        if n > 0 {
            f(0);
        }
        for _ in 0..jobs {
            self.done.recv().expect("shard worker finished");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels wakes every worker out of `recv`.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// A raw pointer the phase closures can share across worker threads.
/// Every use site upholds the phase protocol: during a phase each
/// accessed index is touched mutably by exactly one worker, or the
/// pointee is read-only for the whole phase; the dispatch join orders
/// phases.
struct SendMutPtr<T>(*mut T);

impl<T> SendMutPtr<T> {
    /// The wrapped pointer. A method rather than field access so that
    /// closures capture the whole `Sync` wrapper (edition-2021 precise
    /// capture would otherwise grab the bare `*mut`, which is `!Sync`).
    fn ptr(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMutPtr<T> {}
// SAFETY: see the struct documentation — disjoint or read-only access
// per phase, phases ordered by the dispatch join.
unsafe impl<T> Send for SendMutPtr<T> {}
unsafe impl<T> Sync for SendMutPtr<T> {}

/// Shared views of the engine's *global* per-node arrays, handed to the
/// shard phase methods. Per-element access only, via raw pointers — no
/// aliased `&mut` slices ever exist across workers.
///
/// The disjointness protocol: a node's entries are written only by the
/// shard that owns the node (step/sweep phases), by the shard claiming
/// it (integrate phase — exactly one shard per node, since a node is
/// routed to exactly one stripe), or by the coordinator between phases.
#[derive(Clone, Copy)]
struct NodeRefs {
    cell: SendMutPtr<u32>,
    hits: SendMutPtr<Vec<u32>>,
    pos: SendMutPtr<u32>,
}

impl NodeRefs {
    /// The global cell node `n`'s prediction occupied at the last round
    /// (`UNOWNED` when no shard owns the node).
    #[inline]
    fn cell(&self, n: usize) -> u32 {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.cell.ptr().add(n) }
    }

    #[inline]
    fn set_cell(&self, n: usize, v: u32) {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.cell.ptr().add(n) = v }
    }

    /// Node `n`'s sorted list of currently-satisfied partial queries.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    fn hits(&self, n: usize) -> &mut Vec<u32> {
        // SAFETY: per-node disjoint access, see the struct docs; the
        // returned borrow is used and dropped within one shard's
        // single-threaded phase code.
        unsafe { &mut *self.hits.ptr().add(n) }
    }

    /// Node `n`'s position in its owning shard's `owned` list.
    #[inline]
    fn pos(&self, n: usize) -> u32 {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.pos.ptr().add(n) }
    }

    #[inline]
    fn set_pos(&self, n: usize, v: u32) {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.pos.ptr().add(n) = v }
    }
}

/// One stripe's evaluation state: the per-query member lists restricted
/// to the nodes whose predicted position falls in this shard's columns,
/// plus the stripe-clipped indexes. Per-node state lives in the
/// engine-global arrays (see [`NodeRefs`]).
#[derive(Debug, Clone)]
struct Shard {
    /// Grid columns `[start, end)` owned by this shard.
    cols: Range<usize>,
    /// Stripe-restricted cell→queries index for exact evaluation.
    qindex: QueryIndex,
    /// Per *global* query slot: sorted ids of owned member nodes.
    members: Vec<Vec<u32>>,
    /// Owned node ids (unordered; the global `owned_pos` array maps
    /// node → position in this list).
    owned: Vec<u32>,
    hits_scratch: Vec<u32>,
    /// Stripe-restricted Δ⊣-expanded cover for the uncertain path.
    ucover: QueryIndex,
    /// Per query slot: must/maybe members of the last uncertain round.
    must: Vec<Vec<u32>>,
    maybe: Vec<Vec<u32>>,
    /// Cumulative step+integrate wall time, nanoseconds.
    round_ns: u64,
    /// Cumulative nodes handed off out of this shard.
    handoffs: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            cols: 0..0,
            qindex: QueryIndex::unbuilt(),
            members: Vec::new(),
            owned: Vec::new(),
            hits_scratch: Vec::new(),
            ucover: QueryIndex::unbuilt(),
            must: Vec::new(),
            maybe: Vec::new(),
            round_ns: 0,
            handoffs: 0,
        }
    }

    /// Full build: claim every reported node in the stripe with one
    /// ascending store pass (pushing in node-id order keeps the member
    /// lists sorted with no per-insert search). The coordinator reset
    /// the global per-node arrays before this phase.
    fn rebuild(&mut self, queries: &[RangeQuery], store: &NodeStore, t: f64, refs: NodeRefs) {
        for list in &mut self.members {
            list.clear();
        }
        self.owned.clear();
        let Shard {
            cols,
            qindex,
            members,
            owned,
            ..
        } = self;
        for n in 0..store.len() {
            let Some(p) = store.predict(n as u32, t) else {
                continue;
            };
            let (row, col) = qindex.rc_of(&p);
            if !cols.contains(&col) {
                continue;
            }
            let slot = qindex.slot(row, col);
            for &q in qindex.full_at(slot) {
                members[q as usize].push(n as u32);
            }
            let hits = refs.hits(n);
            for &q in qindex.partial_at(slot) {
                if queries[q as usize].range.contains(&p) {
                    members[q as usize].push(n as u32);
                    hits.push(q);
                }
            }
            refs.set_cell(n, (row * qindex.side() + col) as u32);
            refs.set_pos(n, owned.len() as u32);
            owned.push(n as u32);
        }
    }

    /// Incremental sweep over every owned node (evaluation time moved, so
    /// every prediction must be refreshed).
    fn sweep_round(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
        refs: NodeRefs,
    ) {
        let mut k = 0;
        while k < self.owned.len() {
            let n = self.owned[k] as usize;
            if self.step_node(n, queries, store, t, routes_row, col_owner, refs) {
                k += 1;
            } else {
                self.unown_at(k, refs);
            }
        }
    }

    /// Work-skipping round at an unchanged evaluation time: `dirty` is
    /// this shard's bucket of owned nodes that re-reported (or were
    /// removed) since the last round — same model + same `t` ⇒ same
    /// prediction ⇒ same memberships for everyone else.
    #[allow(clippy::too_many_arguments)]
    fn dirty_round(
        &mut self,
        dirty: &[u32],
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
        refs: NodeRefs,
    ) {
        for &n in dirty {
            let n = n as usize;
            debug_assert_ne!(refs.cell(n), UNOWNED, "dirty node routed to a non-owner");
            if !self.step_node(n, queries, store, t, routes_row, col_owner, refs) {
                self.unown_at(refs.pos(n) as usize, refs);
            }
        }
    }

    /// Drops the owned entry at position `k`, keeping `owned_pos` exact.
    fn unown_at(&mut self, k: usize, refs: NodeRefs) {
        let n = self.owned.swap_remove(k) as usize;
        refs.set_pos(n, UNOWNED);
        if let Some(&moved) = self.owned.get(k) {
            refs.set_pos(moved as usize, k as u32);
        }
    }

    /// Removes every membership node `n` holds on this shard and marks
    /// it unplaced (stripe crossing or node removal).
    fn tear_down(&mut self, n: usize, refs: NodeRefs) {
        let Shard {
            qindex, members, ..
        } = self;
        let old_slot = qindex.slot_of_cell(refs.cell(n) as usize);
        for &q in qindex.full_at(old_slot) {
            remove_member(members, q, n as u32);
        }
        let hits = refs.hits(n);
        for &q in hits.iter() {
            remove_member(members, q, n as u32);
        }
        hits.clear();
        refs.set_cell(n, UNOWNED);
    }

    /// Re-places one owned node at time `t`. Returns false when the node
    /// left this shard: removed from the store (memberships torn down,
    /// node forgotten) or crossed into another stripe (torn down and
    /// routed to the new owner's inbox).
    #[allow(clippy::too_many_arguments)]
    fn step_node(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
        refs: NodeRefs,
    ) -> bool {
        debug_assert_ne!(refs.cell(n), UNOWNED, "stepping an unowned node");
        let Some(p) = store.predict(n as u32, t) else {
            // The node was removed since the last round.
            self.tear_down(n, refs);
            return false;
        };
        let (row, col) = self.qindex.rc_of(&p);
        if !self.cols.contains(&col) {
            // Stripe crossing: remove every membership held here and hand
            // the node to the stripe that owns its new column.
            self.tear_down(n, refs);
            self.handoffs += 1;
            routes_row[col_owner[col] as usize].push(n as u32);
            return false;
        }
        let cell = row * self.qindex.side() + col;
        let slot = self.qindex.slot(row, col);
        let old_cell = refs.cell(n) as usize;
        let Shard {
            qindex,
            members,
            hits_scratch,
            ..
        } = self;
        if cell == old_cell {
            let partial = qindex.partial_at(slot);
            if partial.is_empty() {
                // Full-cover membership depends on the cell alone:
                // nothing can have changed for this node.
                return true;
            }
            hits_scratch.clear();
            for &q in partial {
                if queries[q as usize].range.contains(&p) {
                    hits_scratch.push(q);
                }
            }
            let old_hits = refs.hits(n);
            if *hits_scratch == *old_hits {
                return true;
            }
            let (mut i, mut j) = (0, 0);
            while i < old_hits.len() || j < hits_scratch.len() {
                match (old_hits.get(i), hits_scratch.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), b) if b.is_none() || a < *b.unwrap() => {
                        remove_member(members, a, n as u32);
                        i += 1;
                    }
                    (_, Some(&b)) => {
                        insert_member(members, b, n as u32);
                        j += 1;
                    }
                    _ => unreachable!(),
                }
            }
            old_hits.clear();
            old_hits.extend_from_slice(hits_scratch);
        } else {
            let old_slot = qindex.slot_of_cell(old_cell);
            for &q in qindex.full_at(old_slot) {
                remove_member(members, q, n as u32);
            }
            let hits = refs.hits(n);
            for &q in hits.iter() {
                remove_member(members, q, n as u32);
            }
            hits.clear();
            for &q in qindex.full_at(slot) {
                insert_member(members, q, n as u32);
            }
            for &q in qindex.partial_at(slot) {
                if queries[q as usize].range.contains(&p) {
                    insert_member(members, q, n as u32);
                    hits.push(q);
                }
            }
            refs.set_cell(n, cell as u32);
        }
        true
    }

    /// Claims a node routed here by another shard (its new position is
    /// guaranteed to lie in this stripe).
    fn claim(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        refs: NodeRefs,
    ) {
        let p = store.predict(n as u32, t).expect("routed node has a model");
        let (row, col) = self.qindex.rc_of(&p);
        debug_assert!(self.cols.contains(&col), "node routed to the wrong stripe");
        self.insert_node(n, row, col, &p, queries, refs);
    }

    /// Claims a pending first report the coordinator routed to this
    /// stripe. Skips nodes that are already owned (a node can be pending
    /// *and* re-placed in the step phase after a remove/re-ingest pair)
    /// or were removed again before the round.
    fn claim_pending(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        refs: NodeRefs,
    ) {
        if refs.cell(n) != UNOWNED {
            return;
        }
        let Some(p) = store.predict(n as u32, t) else {
            return;
        };
        let (row, col) = self.qindex.rc_of(&p);
        debug_assert!(
            self.cols.contains(&col),
            "pending node routed to the wrong stripe"
        );
        self.insert_node(n, row, col, &p, queries, refs);
    }

    fn insert_node(
        &mut self,
        n: usize,
        row: usize,
        col: usize,
        p: &Point,
        queries: &[RangeQuery],
        refs: NodeRefs,
    ) {
        let slot = self.qindex.slot(row, col);
        let Shard {
            qindex,
            members,
            owned,
            ..
        } = self;
        for &q in qindex.full_at(slot) {
            insert_member(members, q, n as u32);
        }
        let hits = refs.hits(n);
        debug_assert!(hits.is_empty(), "claimed node carries stale partial hits");
        for &q in qindex.partial_at(slot) {
            if queries[q as usize].range.contains(p) {
                insert_member(members, q, n as u32);
                hits.push(q);
            }
        }
        refs.set_cell(n, (row * qindex.side() + col) as u32);
        refs.set_pos(n, owned.len() as u32);
        owned.push(n as u32);
    }

    /// One uncertain classification pass over the stripe. Not
    /// incremental (per-node Δ changes freely between calls), but each
    /// node is classified by exactly one shard against exactly the
    /// queries a full-width cover would list, with `delta_of` called at
    /// most once per node.
    fn uncertain_round(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        max_delta: f64,
        delta_of: &(dyn Fn(u32, Point) -> f64 + Sync),
    ) {
        self.must.resize_with(queries.len(), Vec::new);
        self.must.truncate(queries.len());
        self.maybe.resize_with(queries.len(), Vec::new);
        self.maybe.truncate(queries.len());
        for list in self.must.iter_mut().chain(self.maybe.iter_mut()) {
            list.clear();
        }
        for n in 0..store.len() {
            let Some(p) = store.predict(n as u32, t) else {
                continue;
            };
            let (row, col) = self.ucover.rc_of(&p);
            if !self.cols.contains(&col) {
                continue;
            }
            let cover = self.ucover.partial_at(self.ucover.slot(row, col));
            if cover.is_empty() {
                continue;
            }
            let delta = delta_of(n as u32, p).clamp(0.0, max_delta);
            for &q in cover {
                let range = &queries[q as usize].range;
                if range.contains(&p) && range.interior_depth(&p) >= delta {
                    self.must[q as usize].push(n as u32);
                } else if range.distance_to_point(&p) <= delta {
                    self.maybe[q as usize].push(n as u32);
                }
            }
        }
    }
}

/// Merges the sorted, pairwise-disjoint per-shard lists into `out`
/// ascending. The dedup guard keeps the merge deterministic (and loudly
/// wrong in debug builds) even if the disjointness invariant were ever
/// violated.
fn merge_into(srcs: &[&[u32]], out: &mut Vec<u32>) {
    debug_assert!(srcs.len() <= MAX_SHARDS);
    let mut nonempty = 0usize;
    let mut only = 0usize;
    let mut total = 0usize;
    for (i, list) in srcs.iter().enumerate() {
        if !list.is_empty() {
            nonempty += 1;
            only = i;
            total += list.len();
        }
    }
    if nonempty == 0 {
        return;
    }
    if nonempty == 1 {
        out.extend_from_slice(srcs[only]);
        return;
    }
    out.reserve(total);
    let mut pos = [0usize; MAX_SHARDS];
    loop {
        let mut best: Option<u32> = None;
        for (i, list) in srcs.iter().enumerate() {
            if let Some(&v) = list.get(pos[i]) {
                if best.is_none_or(|b| v < b) {
                    best = Some(v);
                }
            }
        }
        let Some(b) = best else { break };
        let mut sources = 0;
        for (i, list) in srcs.iter().enumerate() {
            if list.get(pos[i]) == Some(&b) {
                pos[i] += 1;
                sources += 1;
            }
        }
        debug_assert_eq!(sources, 1, "node {b} owned by {sources} shards");
        out.push(b);
    }
}

/// All state of the unified engine. See the module docs for the round
/// protocol and the bit-identity argument.
#[derive(Debug)]
pub(crate) struct UnifiedEval {
    bounds: Rect,
    num_shards: usize,
    shards: Vec<Shard>,
    /// Per grid column: the shard owning it.
    col_owner: Vec<u32>,
    /// Global per-node arrays (disjointly written — each node is owned
    /// by exactly one shard; see [`NodeRefs`]).
    node_cell: Vec<u32>,
    partial_hits: Vec<Vec<u32>>,
    owned_pos: Vec<u32>,
    /// Whether the stripe indexes match the current query set.
    indexed: bool,
    /// Whether shard state describes a completed exact round.
    primed: bool,
    /// Bit pattern of the last exact round's evaluation time.
    last_t: u64,
    /// Whether rounds at an unchanged evaluation time may skip clean
    /// nodes (true in production; false reproduces the every-node
    /// incremental baseline for benchmarking).
    dirty_tracking: bool,
    /// Nodes that re-reported (or were removed) since the last exact
    /// round, deduplicated via `dirty_flag`.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    /// Nodes whose *first* report arrived since the last exact round —
    /// not yet owned by any shard.
    pending: Vec<u32>,
    /// Flat per-`(src, dst)` handoff outboxes (`src·S + dst`), reused
    /// across rounds; receivers clear their inbound column after
    /// draining it.
    routes: Vec<Vec<u32>>,
    /// Per-shard batches the coordinator builds before each round
    /// (dirty nodes by owner; pending first reports by destination).
    dirty_by_shard: Vec<Vec<u32>>,
    pending_by_shard: Vec<Vec<u32>>,
    /// Whether the stripe Δ⊣-covers match the current query set and Δ⊣.
    uindexed: bool,
    umax_delta: f64,
    /// Lazily-created worker pool (`num_shards − 1` threads). Not
    /// cloned: a cloned engine rebuilds its own pool on first use.
    pool: Option<WorkerPool>,
}

impl Clone for UnifiedEval {
    fn clone(&self) -> Self {
        UnifiedEval {
            bounds: self.bounds,
            num_shards: self.num_shards,
            shards: self.shards.clone(),
            col_owner: self.col_owner.clone(),
            node_cell: self.node_cell.clone(),
            partial_hits: self.partial_hits.clone(),
            owned_pos: self.owned_pos.clone(),
            indexed: self.indexed,
            primed: self.primed,
            last_t: self.last_t,
            dirty_tracking: self.dirty_tracking,
            dirty: self.dirty.clone(),
            dirty_flag: self.dirty_flag.clone(),
            pending: self.pending.clone(),
            routes: self.routes.clone(),
            dirty_by_shard: self.dirty_by_shard.clone(),
            pending_by_shard: self.pending_by_shard.clone(),
            uindexed: self.uindexed,
            umax_delta: self.umax_delta,
            pool: None,
        }
    }
}

impl UnifiedEval {
    /// Creates empty state for a server over `bounds` with `shards`
    /// stripes (clamped to `1..=MAX_SHARDS`).
    pub(crate) fn new(bounds: Rect, num_nodes: usize, shards: usize) -> Self {
        UnifiedEval {
            bounds,
            num_shards: shards.clamp(1, MAX_SHARDS),
            shards: Vec::new(),
            col_owner: Vec::new(),
            node_cell: Vec::new(),
            partial_hits: Vec::new(),
            owned_pos: Vec::new(),
            indexed: false,
            primed: false,
            last_t: 0,
            dirty_tracking: true,
            dirty: Vec::new(),
            dirty_flag: vec![false; num_nodes],
            pending: Vec::new(),
            routes: Vec::new(),
            dirty_by_shard: Vec::new(),
            pending_by_shard: Vec::new(),
            uindexed: false,
            umax_delta: f64::NAN,
            pool: None,
        }
    }

    /// Enables or disables the unchanged-time dirty shortcut (see the
    /// module docs; benchmarking baseline).
    pub(crate) fn set_dirty_tracking(&mut self, enabled: bool) {
        self.dirty_tracking = enabled;
    }

    /// Marks every derived structure stale (query-set change).
    pub(crate) fn invalidate(&mut self) {
        self.indexed = false;
        self.primed = false;
        self.uindexed = false;
    }

    /// Ingest hook: tracks which nodes can change membership at an
    /// unchanged evaluation time. `first_report` nodes are not owned by
    /// any shard yet and are claimed at the next round's integrate
    /// phase.
    pub(crate) fn on_ingest(&mut self, node: u32, first_report: bool) {
        let n = node as usize;
        if n >= self.dirty_flag.len() {
            self.dirty_flag.resize(n + 1, false);
        }
        if first_report {
            self.pending.push(node);
        } else if !self.dirty_flag[n] {
            self.dirty_flag[n] = true;
            self.dirty.push(node);
        }
    }

    /// Removal hook: the node must be re-placed (torn down) at the next
    /// round even if the evaluation time does not advance.
    pub(crate) fn on_remove(&mut self, node: u32) {
        let n = node as usize;
        if n >= self.dirty_flag.len() {
            self.dirty_flag.resize(n + 1, false);
        }
        if !self.dirty_flag[n] {
            self.dirty_flag[n] = true;
            self.dirty.push(node);
        }
    }

    /// Per-shard telemetry snapshot.
    pub(crate) fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStats {
                shard: i,
                columns: (shard.cols.start, shard.cols.end),
                nodes: shard.owned.len(),
                round_ns: shard.round_ns,
                handoffs: shard.handoffs,
            })
            .collect()
    }

    /// (Re)builds the stripe layout and per-shard exact indexes for the
    /// current query set.
    fn build_indexes(&mut self, queries: &[RangeQuery], num_nodes: usize) {
        let side = side_for(queries.len());
        let s = self.num_shards;
        self.shards.resize_with(s, Shard::new);
        self.col_owner.clear();
        self.col_owner.resize(side, 0);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            // Contiguous, near-even stripes over the cell columns (the
            // same split for any query set of the same size, so a given
            // node deterministically maps to a shard).
            let lo = side * i / s;
            let hi = side * (i + 1) / s;
            for owner in &mut self.col_owner[lo..hi] {
                *owner = i as u32;
            }
            shard.cols = lo..hi;
            shard.qindex = QueryIndex::build_cols(&self.bounds, queries, 0.0, true, lo..hi);
            shard.members.resize_with(queries.len(), Vec::new);
            shard.members.truncate(queries.len());
        }
        self.node_cell.resize(num_nodes, UNOWNED);
        self.partial_hits.resize_with(num_nodes, Vec::new);
        self.owned_pos.resize(num_nodes, UNOWNED);
        if self.dirty_flag.len() < num_nodes {
            self.dirty_flag.resize(num_nodes, false);
        }
        self.routes.resize_with(s * s, Vec::new);
        self.routes.truncate(s * s);
        self.dirty_by_shard.resize_with(s, Vec::new);
        self.pending_by_shard.resize_with(s, Vec::new);
        self.indexed = true;
        self.primed = false;
        self.uindexed = false;
    }

    /// Clears the per-round change feeds after an exact round consumed
    /// them.
    fn clear_round_inputs(&mut self) {
        for &n in &self.dirty {
            self.dirty_flag[n as usize] = false;
        }
        self.dirty.clear();
        self.pending.clear();
        for bucket in self
            .dirty_by_shard
            .iter_mut()
            .chain(self.pending_by_shard.iter_mut())
        {
            bucket.clear();
        }
    }

    /// The shard owning the stripe a position falls in.
    #[inline]
    fn owner_of(&self, p: &Point) -> usize {
        let side = self.col_owner.len();
        let col = axis_cell(p.x, self.bounds.min.x, self.bounds.width(), side);
        self.col_owner[col] as usize
    }

    /// One exact evaluation round at time `t`, writing sorted
    /// [`QueryResult`]s into `out`. With `sequential`, every phase of
    /// every shard runs on the calling thread in shard order — same
    /// state transitions, no pool.
    pub(crate) fn evaluate_into(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        out: &mut Vec<QueryResult>,
        sequential: bool,
    ) {
        if !self.indexed {
            self.build_indexes(queries, store.len());
        }
        let s = self.num_shards;
        let rebuild = !self.primed;
        let same_t = self.dirty_tracking && self.primed && self.last_t == t.to_bits();
        let nq = queries.len();
        out.resize_with(nq, QueryResult::default);
        out.truncate(nq);

        // Coordinator prep: batch the round's change feed per shard.
        let mut step_targets: Vec<usize> = Vec::with_capacity(s);
        let mut integrate_targets: Vec<usize> = Vec::with_capacity(s);
        if rebuild {
            // Full rebuild: reset the global per-node arrays and any
            // stale outboxes; every shard participates in the step
            // phase, nothing integrates.
            self.node_cell.fill(UNOWNED);
            self.owned_pos.fill(UNOWNED);
            for hits in &mut self.partial_hits {
                hits.clear();
            }
            for outbox in &mut self.routes {
                outbox.clear();
            }
            step_targets.extend(0..s);
        } else {
            if same_t {
                // Bucket dirty nodes by owning shard (derived from the
                // node's current cell — columns map to shards).
                let side = self.col_owner.len();
                for &node in &self.dirty {
                    let cell = self.node_cell[node as usize];
                    if cell == UNOWNED {
                        continue; // pending or already removed, never placed
                    }
                    let owner = self.col_owner[cell as usize % side] as usize;
                    self.dirty_by_shard[owner].push(node);
                }
                step_targets.extend((0..s).filter(|&i| !self.dirty_by_shard[i].is_empty()));
            } else {
                step_targets.extend((0..s).filter(|&i| !self.shards[i].owned.is_empty()));
            }
            // Route pending first reports to their destination stripe.
            for &node in &self.pending {
                if self.node_cell[node as usize] != UNOWNED {
                    continue; // re-placed via the dirty path (remove/re-ingest)
                }
                let Some(p) = store.predict(node, t) else {
                    continue; // removed again before any round saw it
                };
                let owner = self.owner_of(&p);
                self.pending_by_shard[owner].push(node);
            }
        }

        let pool: Option<&WorkerPool> = if sequential || s == 1 {
            None
        } else {
            Some(self.pool.get_or_insert_with(|| WorkerPool::new(s - 1)))
        };
        let run_on = |targets: &[usize], f: &(dyn Fn(usize) + Sync)| match pool {
            Some(p) => p.run_on(targets, f),
            None => {
                for &i in targets {
                    f(i);
                }
            }
        };

        let shards = SendMutPtr(self.shards.as_mut_ptr());
        let routes = SendMutPtr(self.routes.as_mut_ptr());
        let out_ptr = SendMutPtr(out.as_mut_ptr());
        let refs = NodeRefs {
            cell: SendMutPtr(self.node_cell.as_mut_ptr()),
            hits: SendMutPtr(self.partial_hits.as_mut_ptr()),
            pos: SendMutPtr(self.owned_pos.as_mut_ptr()),
        };
        let col_owner = &self.col_owner;
        let dirty_by_shard = &self.dirty_by_shard;
        let pending_by_shard = &self.pending_by_shard;

        // Phase 1 — step: each active worker exclusively owns shard i,
        // outbox row i, and the per-node entries of the nodes shard i
        // owns.
        run_on(&step_targets, &|i: usize| {
            // SAFETY: exclusive per-index access, see SendMutPtr/NodeRefs.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let routes_row = unsafe { std::slice::from_raw_parts_mut(routes.ptr().add(i * s), s) };
            let start = Instant::now();
            if rebuild {
                shard.rebuild(queries, store, t, refs);
            } else if same_t {
                shard.dirty_round(
                    &dirty_by_shard[i],
                    queries,
                    store,
                    t,
                    routes_row,
                    col_owner,
                    refs,
                );
            } else {
                shard.sweep_round(queries, store, t, routes_row, col_owner, refs);
            }
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Phase 2 — integrate: each receiving worker drains (and clears)
        // the outbox column addressed to its shard and claims its
        // pre-routed pending arrivals. Skipped outright when no node
        // crossed a stripe and nothing is pending.
        if !rebuild {
            for i in 0..s {
                let inbound = (0..s).any(|src| !self.routes[src * s + i].is_empty());
                if inbound || !self.pending_by_shard[i].is_empty() {
                    integrate_targets.push(i);
                }
            }
            run_on(&integrate_targets, &|i: usize| {
                // SAFETY: shard i and outbox column i are touched by this
                // worker only; claimed nodes' per-node entries are
                // disjoint (each node is routed to exactly one stripe).
                let shard = unsafe { &mut *shards.ptr().add(i) };
                let start = Instant::now();
                for src in 0..s {
                    let outbox = unsafe { &mut *routes.ptr().add(src * s + i) };
                    for &n in outbox.iter() {
                        shard.claim(n as usize, queries, store, t, refs);
                    }
                    outbox.clear();
                }
                for &n in &pending_by_shard[i] {
                    shard.claim_pending(n as usize, queries, store, t, refs);
                }
                shard.round_ns += start.elapsed().as_nanos() as u64;
            });
        }

        // Phase 3 — emit: shards are read-only. At one shard this is a
        // straight copy of the member lists; otherwise each worker
        // k-way-merges the member lists of its contiguous query chunk.
        if s == 1 {
            let shard = &self.shards[0];
            for ((slot, query), members) in out.iter_mut().zip(queries).zip(&shard.members) {
                slot.query = query.id;
                slot.nodes.clear();
                slot.nodes.extend_from_slice(members);
            }
        } else {
            let run_all = |f: &(dyn Fn(usize) + Sync)| match pool {
                Some(p) => p.broadcast(s, f),
                None => {
                    for i in 0..s {
                        f(i);
                    }
                }
            };
            run_all(&|i: usize| {
                // SAFETY: shards read-only for the whole phase; out slots
                // are written by exactly one worker (disjoint chunks).
                let shards_ro: &[Shard] = unsafe { std::slice::from_raw_parts(shards.ptr(), s) };
                let mut srcs: Vec<&[u32]> = vec![&[]; s];
                let chunk = nq * i / s..nq * (i + 1) / s;
                for (q, query) in queries.iter().enumerate().take(chunk.end).skip(chunk.start) {
                    let slot = unsafe { &mut *out_ptr.ptr().add(q) };
                    slot.query = query.id;
                    slot.nodes.clear();
                    for (si, shard) in shards_ro.iter().enumerate() {
                        srcs[si] = &shard.members[q];
                    }
                    merge_into(&srcs, &mut slot.nodes);
                }
            });
        }

        self.primed = true;
        self.last_t = t.to_bits();
        self.clear_round_inputs();
    }

    /// One uncertain evaluation round: every shard classifies its
    /// stripe's nodes against the Δ⊣-expanded covers, then the per-shard
    /// must/maybe lists are merged per query. Stateless between rounds
    /// (per-node Δ changes freely).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_uncertain_into(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        max_delta: f64,
        delta_of: &(dyn Fn(u32, Point) -> f64 + Sync),
        out: &mut Vec<UncertainResult>,
        sequential: bool,
    ) {
        if !self.indexed {
            self.build_indexes(queries, store.len());
        }
        if !self.uindexed || self.umax_delta.to_bits() != max_delta.to_bits() {
            for shard in &mut self.shards {
                shard.ucover = QueryIndex::build_cols(
                    &self.bounds,
                    queries,
                    max_delta,
                    false,
                    shard.cols.clone(),
                );
            }
            self.umax_delta = max_delta;
            self.uindexed = true;
        }
        let s = self.num_shards;
        let nq = queries.len();
        out.resize_with(nq, UncertainResult::default);
        out.truncate(nq);

        let pool: Option<&WorkerPool> = if sequential || s == 1 {
            None
        } else {
            Some(self.pool.get_or_insert_with(|| WorkerPool::new(s - 1)))
        };
        let run = |f: &(dyn Fn(usize) + Sync)| match pool {
            Some(p) => p.broadcast(s, f),
            None => {
                for i in 0..s {
                    f(i);
                }
            }
        };

        let shards = SendMutPtr(self.shards.as_mut_ptr());
        let out_ptr = SendMutPtr(out.as_mut_ptr());

        // Classify: each worker exclusively owns shard i.
        run(&|i: usize| {
            // SAFETY: exclusive per-index access, see SendMutPtr.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let start = Instant::now();
            shard.uncertain_round(queries, store, t, max_delta, delta_of);
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Emit: a copy at one shard, else shards read-only with disjoint
        // query chunks per worker.
        if s == 1 {
            let shard = &self.shards[0];
            for (q, (slot, query)) in out.iter_mut().zip(queries).enumerate() {
                slot.query = query.id;
                slot.must.clear();
                slot.must.extend_from_slice(&shard.must[q]);
                slot.maybe.clear();
                slot.maybe.extend_from_slice(&shard.maybe[q]);
            }
            return;
        }
        run(&|i: usize| {
            // SAFETY: see the exact emit phase.
            let shards_ro: &[Shard] = unsafe { std::slice::from_raw_parts(shards.ptr(), s) };
            let mut srcs: Vec<&[u32]> = vec![&[]; s];
            let chunk = nq * i / s..nq * (i + 1) / s;
            for (q, query) in queries.iter().enumerate().take(chunk.end).skip(chunk.start) {
                let slot = unsafe { &mut *out_ptr.ptr().add(q) };
                slot.query = query.id;
                slot.must.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.must[q];
                }
                merge_into(&srcs, &mut slot.must);
                slot.maybe.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.maybe[q];
                }
                merge_into(&srcs, &mut slot.maybe);
            }
        });
    }
}

// The simulation pipeline moves whole servers (and therefore engines)
// into per-policy lane threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<UnifiedEval>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_empty_single_and_many() {
        let mut out = Vec::new();
        merge_into(&[&[], &[]], &mut out);
        assert!(out.is_empty());
        merge_into(&[&[1, 5, 9], &[]], &mut out);
        assert_eq!(out, vec![1, 5, 9]);
        out.clear();
        merge_into(&[&[2, 8], &[1, 5, 9], &[0, 10]], &mut out);
        assert_eq!(out, vec![0, 1, 2, 5, 8, 9, 10]);
    }

    #[test]
    fn pool_broadcast_runs_every_index_and_reuses_workers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        pool.broadcast(4, &|i| {
            sum.fetch_add(1 << (8 * i), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 0x01010101);
        // Reuse across rounds: same workers, fresh closure.
        for _ in 0..100 {
            pool.broadcast(4, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 0x01010101 + 600);
    }

    #[test]
    fn pool_smaller_broadcasts_are_fine() {
        let pool = WorkerPool::new(7);
        let hits = std::sync::Mutex::new(Vec::new());
        pool.broadcast(2, &|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn pool_run_on_dispatches_sparse_targets() {
        let pool = WorkerPool::new(3);
        let hits = std::sync::Mutex::new(Vec::new());
        pool.run_on(&[], &|i| hits.lock().unwrap().push(i));
        pool.run_on(&[2], &|i| hits.lock().unwrap().push(i));
        pool.run_on(&[0, 3], &|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 3]);
    }
}
