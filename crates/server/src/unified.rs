//! The unified evaluation engine: one SoA-backed, dirty-tracking core
//! for every shard count, with `shards = 1` as the degenerate
//! (single-stripe, no-pool) case (DESIGN.md §13).
//!
//! The engine partitions the cell grid of `QueryIndex` into `S`
//! contiguous column stripes, each owned by one shard that runs the same
//! incremental membership maintenance over its own slice of the node
//! population. Per-query member lists are per-shard; per-*node* state
//! (current cell, partial hits, owned-list position) is global — each
//! node is owned by exactly one shard, so the arrays are written
//! disjointly and cost `O(nodes)` once instead of `O(nodes × shards)`.
//!
//! A round is at most three phases over a persistent hand-rolled
//! `WorkerPool` (`S − 1` threads plus the calling thread, reused
//! across rounds), with the pool join acting as the inter-phase barrier
//! — and each phase is dispatched *only to the shards with work*:
//!
//! 1. **Step** — re-reported (dirty) nodes are bucketed by owning shard
//!    on the coordinating thread; each active shard re-places its
//!    bucket (or sweeps all owned nodes when the evaluation time
//!    advanced), routing stripe-leavers to per-`(src, dst)` outboxes.
//!    Shards with nothing dirty and nothing owned are never woken.
//! 2. **Integrate** — pending first reports are pre-routed to their
//!    destination stripe by the coordinator; each *receiving* shard
//!    drains its inbound outboxes and claims its pending arrivals. The
//!    phase is skipped outright when nothing crossed a stripe and
//!    nothing is pending.
//! 3. **Emit** — per-shard disjoint sorted member lists are k-way
//!    merged into the caller's buffers (a plain copy at `shards = 1`).
//!
//! Two properties make the result *bit-identical* across shard counts
//! (and to the retired single-index inverted engine):
//!
//! * **Boundary replication**: a query overlapping several stripes is
//!   registered on every overlapping shard, and a stripe index's
//!   per-cell lists are identical to the full-width index's lists for
//!   every in-stripe cell (`QueryIndex::build_cols`). A node is
//!   therefore classified against exactly the same queries at any shard
//!   count, by exactly one shard.
//! * **Deterministic merge**: each shard's member lists are sorted node
//!   sets, shards own disjoint node sets, and the k-way merge emits the
//!   ascending union, independent of thread scheduling.
//!
//! Dirty tracking is where the single-core win lives: a round at an
//! unchanged evaluation time re-places only re-reported + handed-off +
//! pending nodes — `O(churn)`, not `O(nodes)`. Rounds at a new
//! evaluation time sweep every owned node (every prediction moved).
//! `UnifiedEval::set_dirty_tracking(false)` disables the
//! unchanged-time shortcut, reproducing the retired inverted engine's
//! every-node incremental round — the benchmarks' baseline.

use std::fmt;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use lira_core::geometry::{Point, Rect};

use crate::node_store::NodeStore;
use crate::qindex::{
    axis_cell, col_query_covers, insert_member, remove_member, side_for, QueryIndex,
};
use crate::query::{QueryResult, RangeQuery, UncertainResult};

/// Hard cap on the shard count: the emit merge keeps one cursor per
/// shard on the stack, and stripe parallelism past this point is far
/// beyond any sensible core count for one lane.
pub const MAX_SHARDS: usize = 32;

/// Sentinel for "this node is owned by no shard" in the global per-node
/// arrays (`side ≤ 256`, so real cell ids stay far below it).
const UNOWNED: u32 = u32::MAX;

/// Adaptive-dispatch gate for the per-node phases (step/sweep/rebuild
/// and the uncertain classify): waking the pool costs two channel hops
/// per worker, so rounds below this much per-node work stay on the
/// calling thread.
const PAR_STEP_MIN: usize = 1024;
/// Adaptive-dispatch gate for the emit phase, in result entries
/// (measured on the previous round — emit volume is stable between
/// adjacent rounds).
const PAR_EMIT_MIN: usize = 8192;
/// Re-striper trigger: per-shard load CoV above this…
const COV_HI: f64 = 0.25;
/// …for this many consecutive rounds fires a rebalance…
const RESTRIPE_SUSTAIN: u32 = 3;
/// …followed by this many quiet rounds of cooldown (hysteresis: a fresh
/// migration must not immediately retrigger on its own transient).
const RESTRIPE_COOLDOWN: u32 = 8;
/// A triggered rebalance migrates only if the solver's predicted peak
/// shard load improves on the current assignment by at least this
/// factor. When the hot columns are already as split as column
/// granularity allows, the CoV alarm never clears — without this guard
/// the controller would pay a full migration (and its clipped-index
/// rebuilds) every cooldown expiry for no balance gain.
const RESTRIPE_MIN_GAIN: f64 = 0.9;
/// Amortized migration-overhead budget: after a triggered restripe the
/// cooldown stretches until the pause just paid amounts to at most this
/// fraction of steady-state round time. A slowly drifting hotspot is
/// tracked promptly (pauses are tiny next to rounds); a fast-drifting
/// one is tracked as fast as the budget allows instead of spending more
/// time migrating than evaluating.
const RESTRIPE_PAUSE_BUDGET: f64 = 0.05;
/// Smoothing factor of the per-shard load EWMA the trigger watches.
const EWMA_ALPHA: f64 = 0.3;
/// Weight of one re-reported (dirty) node relative to one merely
/// resident node in the load signal — churn costs a retest per round,
/// residency mostly costs emit bandwidth.
const DIRTY_WEIGHT: f64 = 4.0;
/// Base load of an empty grid column, so the boundary solver degrades
/// to the uniform split on an empty (or not-yet-populated) world.
const COL_EPS: f64 = 1e-3;

/// A snapshot of one shard's telemetry, exposed through
/// [`CqServer::shard_stats`](crate::cq_engine::CqServer::shard_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard position (0-based).
    pub shard: usize,
    /// Grid columns `[start, end)` of the stripe this shard owns.
    pub columns: (usize, usize),
    /// Nodes currently owned by the shard (as of the last exact round).
    pub nodes: usize,
    /// Cumulative wall time the shard spent in step/integrate phases,
    /// nanoseconds.
    pub round_ns: u64,
    /// Cumulative nodes handed off *out of* this shard on stripe
    /// crossings.
    pub handoffs: u64,
}

/// A snapshot of the online re-striper's accounting, exposed through
/// [`CqServer::restripe_stats`](crate::cq_engine::CqServer::restripe_stats)
/// (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RestripeStats {
    /// Rebalances performed (boundary recomputations that moved at least
    /// one column).
    pub restripes: u64,
    /// Cumulative grid columns migrated between shards.
    pub moved_cols: u64,
    /// Cumulative wall time spent inside migrations, nanoseconds (the
    /// "pause" a rebalance adds to its round).
    pub pause_ns: u64,
    /// Coefficient of variation of the current per-shard load (0 at one
    /// shard; recomputed from live ownership on every read).
    pub imbalance: f64,
}

/// One dispatched unit: run `f(idx)`. The erased borrow is kept alive by
/// [`WorkerPool::run_on`], which blocks until the worker signals
/// completion.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    idx: usize,
}

/// A persistent pool of worker threads, created once per engine and
/// reused by every round (the vendored-deps-only stand-in for a rayon
/// scope). Workers block on a channel between rounds, so an idle pool
/// costs nothing but memory.
struct WorkerPool {
    senders: Vec<Sender<Job>>,
    done: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each waiting for jobs.
    fn new(workers: usize) -> Self {
        let (done_tx, done) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lira-shard-{}", w + 1))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        (job.f)(job.idx);
                        if done_tx.send(()).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            done,
            handles,
        }
    }

    /// Runs `f(i)` concurrently for every index in `targets` — the tail
    /// on pool workers, the head on the calling thread — and blocks
    /// until all of them finish. The join doubles as the inter-phase
    /// barrier: a dispatch never overlaps the previous one. Idle shards
    /// are simply not in `targets` and their workers never wake.
    fn run_on(&self, targets: &[usize], f: &(dyn Fn(usize) + Sync)) {
        let Some((&head, tail)) = targets.split_first() else {
            return;
        };
        assert!(
            tail.len() <= self.senders.len(),
            "pool too small for {} shards",
            targets.len()
        );
        // SAFETY: erasing the borrow's lifetime is sound because this
        // function does not return until every dispatched job has
        // signalled completion on the done channel, so no worker can
        // still hold `f` after the borrow ends.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        for (w, &idx) in tail.iter().enumerate() {
            self.senders[w]
                .send(Job { f: f_erased, idx })
                .expect("shard worker alive");
        }
        f(head);
        for _ in tail {
            self.done.recv().expect("shard worker finished");
        }
    }

    /// Runs `f(0), …, f(n-1)` concurrently (a full-width
    /// [`run_on`](Self::run_on) without the target-list allocation).
    fn broadcast(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(n <= self.senders.len() + 1, "pool too small for {n} shards");
        // SAFETY: as in `run_on` — the join below outlives every worker's
        // use of `f`.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let jobs = n.saturating_sub(1);
        for w in 0..jobs {
            self.senders[w]
                .send(Job {
                    f: f_erased,
                    idx: w + 1,
                })
                .expect("shard worker alive");
        }
        if n > 0 {
            f(0);
        }
        for _ in 0..jobs {
            self.done.recv().expect("shard worker finished");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels wakes every worker out of `recv`.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// A raw pointer the phase closures can share across worker threads.
/// Every use site upholds the phase protocol: during a phase each
/// accessed index is touched mutably by exactly one worker, or the
/// pointee is read-only for the whole phase; the dispatch join orders
/// phases.
struct SendMutPtr<T>(*mut T);

impl<T> SendMutPtr<T> {
    /// The wrapped pointer. A method rather than field access so that
    /// closures capture the whole `Sync` wrapper (edition-2021 precise
    /// capture would otherwise grab the bare `*mut`, which is `!Sync`).
    fn ptr(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMutPtr<T> {}
// SAFETY: see the struct documentation — disjoint or read-only access
// per phase, phases ordered by the dispatch join.
unsafe impl<T> Send for SendMutPtr<T> {}
unsafe impl<T> Sync for SendMutPtr<T> {}

/// Shared views of the engine's *global* per-node arrays, handed to the
/// shard phase methods. Per-element access only, via raw pointers — no
/// aliased `&mut` slices ever exist across workers.
///
/// The disjointness protocol: a node's entries are written only by the
/// shard that owns the node (step/sweep phases), by the shard claiming
/// it (integrate phase — exactly one shard per node, since a node is
/// routed to exactly one stripe), or by the coordinator between phases.
#[derive(Clone, Copy)]
struct NodeRefs {
    cell: SendMutPtr<u32>,
    hits: SendMutPtr<Vec<u32>>,
    pos: SendMutPtr<u32>,
}

impl NodeRefs {
    /// The global cell node `n`'s prediction occupied at the last round
    /// (`UNOWNED` when no shard owns the node).
    #[inline]
    fn cell(&self, n: usize) -> u32 {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.cell.ptr().add(n) }
    }

    #[inline]
    fn set_cell(&self, n: usize, v: u32) {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.cell.ptr().add(n) = v }
    }

    /// Node `n`'s sorted list of currently-satisfied partial queries.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    fn hits(&self, n: usize) -> &mut Vec<u32> {
        // SAFETY: per-node disjoint access, see the struct docs; the
        // returned borrow is used and dropped within one shard's
        // single-threaded phase code.
        unsafe { &mut *self.hits.ptr().add(n) }
    }

    /// Node `n`'s position in its owning shard's `owned` list.
    #[inline]
    fn pos(&self, n: usize) -> u32 {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.pos.ptr().add(n) }
    }

    #[inline]
    fn set_pos(&self, n: usize, v: u32) {
        // SAFETY: per-node disjoint access, see the struct docs.
        unsafe { *self.pos.ptr().add(n) = v }
    }
}

/// One stripe's evaluation state: the per-query member lists restricted
/// to the nodes whose predicted position falls in this shard's columns,
/// plus the stripe-clipped indexes. Per-node state lives in the
/// engine-global arrays (see [`NodeRefs`]).
#[derive(Debug, Clone)]
struct Shard {
    /// Grid columns `[start, end)` owned by this shard.
    cols: Range<usize>,
    /// Stripe-restricted cell→queries index for exact evaluation.
    qindex: QueryIndex,
    /// Per *global* query slot: sorted ids of owned member nodes.
    members: Vec<Vec<u32>>,
    /// Owned node ids (unordered; the global `owned_pos` array maps
    /// node → position in this list).
    owned: Vec<u32>,
    hits_scratch: Vec<u32>,
    /// Stripe-restricted Δ⊣-expanded cover for the uncertain path.
    ucover: QueryIndex,
    /// Per query slot: must/maybe members of the last uncertain round.
    must: Vec<Vec<u32>>,
    maybe: Vec<Vec<u32>>,
    /// Cumulative step+integrate wall time, nanoseconds.
    round_ns: u64,
    /// Cumulative nodes handed off out of this shard.
    handoffs: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            cols: 0..0,
            qindex: QueryIndex::unbuilt(),
            members: Vec::new(),
            owned: Vec::new(),
            hits_scratch: Vec::new(),
            ucover: QueryIndex::unbuilt(),
            must: Vec::new(),
            maybe: Vec::new(),
            round_ns: 0,
            handoffs: 0,
        }
    }

    /// Full build: claim every reported node in the stripe with one
    /// ascending store pass (pushing in node-id order keeps the member
    /// lists sorted with no per-insert search). The coordinator reset
    /// the global per-node arrays before this phase.
    fn rebuild(&mut self, queries: &[RangeQuery], store: &NodeStore, t: f64, refs: NodeRefs) {
        for list in &mut self.members {
            list.clear();
        }
        self.owned.clear();
        let Shard {
            cols,
            qindex,
            members,
            owned,
            ..
        } = self;
        for n in 0..store.len() {
            let Some(p) = store.predict(n as u32, t) else {
                continue;
            };
            let (row, col) = qindex.rc_of(&p);
            if !cols.contains(&col) {
                continue;
            }
            let slot = qindex.slot(row, col);
            for &q in qindex.full_at(slot) {
                members[q as usize].push(n as u32);
            }
            let hits = refs.hits(n);
            for &q in qindex.partial_at(slot) {
                if queries[q as usize].range.contains(&p) {
                    members[q as usize].push(n as u32);
                    hits.push(q);
                }
            }
            refs.set_cell(n, (row * qindex.side() + col) as u32);
            refs.set_pos(n, owned.len() as u32);
            owned.push(n as u32);
        }
    }

    /// Incremental sweep over every owned node (evaluation time moved, so
    /// every prediction must be refreshed).
    fn sweep_round(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
        refs: NodeRefs,
    ) {
        let mut k = 0;
        while k < self.owned.len() {
            let n = self.owned[k] as usize;
            if self.step_node(n, queries, store, t, routes_row, col_owner, refs) {
                k += 1;
            } else {
                self.unown_at(k, refs);
            }
        }
    }

    /// Work-skipping round at an unchanged evaluation time: `dirty` is
    /// this shard's bucket of owned nodes that re-reported (or were
    /// removed) since the last round — same model + same `t` ⇒ same
    /// prediction ⇒ same memberships for everyone else.
    #[allow(clippy::too_many_arguments)]
    fn dirty_round(
        &mut self,
        dirty: &[u32],
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
        refs: NodeRefs,
    ) {
        for &n in dirty {
            let n = n as usize;
            debug_assert_ne!(refs.cell(n), UNOWNED, "dirty node routed to a non-owner");
            if !self.step_node(n, queries, store, t, routes_row, col_owner, refs) {
                self.unown_at(refs.pos(n) as usize, refs);
            }
        }
    }

    /// Drops the owned entry at position `k`, keeping `owned_pos` exact.
    fn unown_at(&mut self, k: usize, refs: NodeRefs) {
        let n = self.owned.swap_remove(k) as usize;
        refs.set_pos(n, UNOWNED);
        if let Some(&moved) = self.owned.get(k) {
            refs.set_pos(moved as usize, k as u32);
        }
    }

    /// Removes every membership node `n` holds on this shard and marks
    /// it unplaced (stripe crossing or node removal).
    fn tear_down(&mut self, n: usize, refs: NodeRefs) {
        let Shard {
            qindex, members, ..
        } = self;
        let old_slot = qindex.slot_of_cell(refs.cell(n) as usize);
        for &q in qindex.full_at(old_slot) {
            remove_member(members, q, n as u32);
        }
        let hits = refs.hits(n);
        for &q in hits.iter() {
            remove_member(members, q, n as u32);
        }
        hits.clear();
        refs.set_cell(n, UNOWNED);
    }

    /// Re-places one owned node at time `t`. Returns false when the node
    /// left this shard: removed from the store (memberships torn down,
    /// node forgotten) or crossed into another stripe (torn down and
    /// routed to the new owner's inbox).
    #[allow(clippy::too_many_arguments)]
    fn step_node(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        routes_row: &mut [Vec<u32>],
        col_owner: &[u32],
        refs: NodeRefs,
    ) -> bool {
        debug_assert_ne!(refs.cell(n), UNOWNED, "stepping an unowned node");
        let Some(p) = store.predict(n as u32, t) else {
            // The node was removed since the last round.
            self.tear_down(n, refs);
            return false;
        };
        let (row, col) = self.qindex.rc_of(&p);
        if !self.cols.contains(&col) {
            // Stripe crossing: remove every membership held here and hand
            // the node to the stripe that owns its new column.
            self.tear_down(n, refs);
            self.handoffs += 1;
            routes_row[col_owner[col] as usize].push(n as u32);
            return false;
        }
        let cell = row * self.qindex.side() + col;
        let slot = self.qindex.slot(row, col);
        let old_cell = refs.cell(n) as usize;
        let Shard {
            qindex,
            members,
            hits_scratch,
            ..
        } = self;
        if cell == old_cell {
            let partial = qindex.partial_at(slot);
            if partial.is_empty() {
                // Full-cover membership depends on the cell alone:
                // nothing can have changed for this node.
                return true;
            }
            hits_scratch.clear();
            for &q in partial {
                if queries[q as usize].range.contains(&p) {
                    hits_scratch.push(q);
                }
            }
            let old_hits = refs.hits(n);
            if *hits_scratch == *old_hits {
                return true;
            }
            let (mut i, mut j) = (0, 0);
            while i < old_hits.len() || j < hits_scratch.len() {
                match (old_hits.get(i), hits_scratch.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), b) if b.is_none() || a < *b.unwrap() => {
                        remove_member(members, a, n as u32);
                        i += 1;
                    }
                    (_, Some(&b)) => {
                        insert_member(members, b, n as u32);
                        j += 1;
                    }
                    _ => unreachable!(),
                }
            }
            old_hits.clear();
            old_hits.extend_from_slice(hits_scratch);
        } else {
            let old_slot = qindex.slot_of_cell(old_cell);
            for &q in qindex.full_at(old_slot) {
                remove_member(members, q, n as u32);
            }
            let hits = refs.hits(n);
            for &q in hits.iter() {
                remove_member(members, q, n as u32);
            }
            hits.clear();
            for &q in qindex.full_at(slot) {
                insert_member(members, q, n as u32);
            }
            for &q in qindex.partial_at(slot) {
                if queries[q as usize].range.contains(&p) {
                    insert_member(members, q, n as u32);
                    hits.push(q);
                }
            }
            refs.set_cell(n, cell as u32);
        }
        true
    }

    /// Claims a node routed here by another shard (its new position is
    /// guaranteed to lie in this stripe).
    fn claim(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        refs: NodeRefs,
    ) {
        let p = store.predict(n as u32, t).expect("routed node has a model");
        let (row, col) = self.qindex.rc_of(&p);
        debug_assert!(self.cols.contains(&col), "node routed to the wrong stripe");
        self.insert_node(n, row, col, &p, queries, refs);
    }

    /// Claims a pending first report the coordinator routed to this
    /// stripe. Skips nodes that are already owned (a node can be pending
    /// *and* re-placed in the step phase after a remove/re-ingest pair)
    /// or were removed again before the round.
    fn claim_pending(
        &mut self,
        n: usize,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        refs: NodeRefs,
    ) {
        if refs.cell(n) != UNOWNED {
            return;
        }
        let Some(p) = store.predict(n as u32, t) else {
            return;
        };
        let (row, col) = self.qindex.rc_of(&p);
        debug_assert!(
            self.cols.contains(&col),
            "pending node routed to the wrong stripe"
        );
        self.insert_node(n, row, col, &p, queries, refs);
    }

    fn insert_node(
        &mut self,
        n: usize,
        row: usize,
        col: usize,
        p: &Point,
        queries: &[RangeQuery],
        refs: NodeRefs,
    ) {
        let slot = self.qindex.slot(row, col);
        let Shard {
            qindex,
            members,
            owned,
            ..
        } = self;
        for &q in qindex.full_at(slot) {
            insert_member(members, q, n as u32);
        }
        let hits = refs.hits(n);
        debug_assert!(hits.is_empty(), "claimed node carries stale partial hits");
        for &q in qindex.partial_at(slot) {
            if queries[q as usize].range.contains(p) {
                insert_member(members, q, n as u32);
                hits.push(q);
            }
        }
        refs.set_cell(n, (row * qindex.side() + col) as u32);
        refs.set_pos(n, owned.len() as u32);
        owned.push(n as u32);
    }

    /// One uncertain classification pass over the stripe. Not
    /// incremental (per-node Δ changes freely between calls), but each
    /// node is classified by exactly one shard against exactly the
    /// queries a full-width cover would list, with `delta_of` called at
    /// most once per node.
    fn uncertain_round(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        max_delta: f64,
        delta_of: &(dyn Fn(u32, Point) -> f64 + Sync),
    ) {
        self.must.resize_with(queries.len(), Vec::new);
        self.must.truncate(queries.len());
        self.maybe.resize_with(queries.len(), Vec::new);
        self.maybe.truncate(queries.len());
        for list in self.must.iter_mut().chain(self.maybe.iter_mut()) {
            list.clear();
        }
        for n in 0..store.len() {
            let Some(p) = store.predict(n as u32, t) else {
                continue;
            };
            let (row, col) = self.ucover.rc_of(&p);
            if !self.cols.contains(&col) {
                continue;
            }
            let cover = self.ucover.partial_at(self.ucover.slot(row, col));
            if cover.is_empty() {
                continue;
            }
            let delta = delta_of(n as u32, p).clamp(0.0, max_delta);
            for &q in cover {
                let range = &queries[q as usize].range;
                if range.contains(&p) && range.interior_depth(&p) >= delta {
                    self.must[q as usize].push(n as u32);
                } else if range.distance_to_point(&p) <= delta {
                    self.maybe[q as usize].push(n as u32);
                }
            }
        }
    }
}

/// Merges the sorted, pairwise-disjoint per-shard lists into `out`
/// ascending. The dedup guard keeps the merge deterministic (and loudly
/// wrong in debug builds) even if the disjointness invariant were ever
/// violated.
fn merge_into(srcs: &[&[u32]], out: &mut Vec<u32>) {
    debug_assert!(srcs.len() <= MAX_SHARDS);
    // Compact away empty sources first: with narrow queries most lists
    // live on a single stripe, and the k-way loop below must not scan
    // `s` cursors per element for what is usually a copy or a 2-way
    // merge.
    let mut lists = [&[] as &[u32]; MAX_SHARDS];
    let mut k = 0usize;
    let mut total = 0usize;
    for list in srcs {
        if !list.is_empty() {
            lists[k] = list;
            k += 1;
            total += list.len();
        }
    }
    match k {
        0 => return,
        1 => {
            out.extend_from_slice(lists[0]);
            return;
        }
        2 => {
            // Two stripes: a plain disjoint merge, no cursor array.
            out.reserve(total);
            let (a, b) = (lists[0], lists[1]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                debug_assert_ne!(a[i], b[j], "node {} owned by two shards", a[i]);
                if a[i] < b[j] {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            return;
        }
        _ => {}
    }
    out.reserve(total);
    let lists = &lists[..k];
    let mut pos = [0usize; MAX_SHARDS];
    loop {
        let mut best: Option<u32> = None;
        for (i, list) in lists.iter().enumerate() {
            if let Some(&v) = list.get(pos[i]) {
                if best.is_none_or(|b| v < b) {
                    best = Some(v);
                }
            }
        }
        let Some(b) = best else { break };
        let mut sources = 0;
        for (i, list) in lists.iter().enumerate() {
            if list.get(pos[i]) == Some(&b) {
                pos[i] += 1;
                sources += 1;
            }
        }
        debug_assert_eq!(sources, 1, "node {b} owned by {sources} shards");
        out.push(b);
    }
}

/// Contiguous-partition boundary solver: splits `load` into `s` stripes
/// of near-equal cumulative weight, returning `s + 1` boundary columns
/// (`b[0] = 0`, `b[s] = load.len()`). Each boundary lands where the
/// load prefix crosses its `i·total/s` target, rounding a column to
/// whichever side its midpoint falls on — deterministic, monotone, and
/// degenerating to the uniform split when the load is uniform. Empty
/// stripes are legal (a shard may own zero columns).
fn solve_boundaries(load: &[f64], s: usize) -> Vec<usize> {
    let side = load.len();
    let total: f64 = load.iter().sum();
    let mut b = vec![side; s + 1];
    b[0] = 0;
    let mut j = 0usize;
    let mut prefix = 0.0;
    for (i, slot) in b.iter_mut().enumerate().take(s).skip(1) {
        let target = total * i as f64 / s as f64;
        while j < side && prefix + load[j] / 2.0 <= target {
            prefix += load[j];
            j += 1;
        }
        *slot = j;
    }
    b
}

/// Coefficient of variation (σ/µ) of a load vector; 0 for fewer than
/// two shards or an all-idle fleet.
fn cov(loads: &[f64]) -> f64 {
    if loads.len() < 2 {
        return 0.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = loads.iter().map(|&l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64;
    var.sqrt() / mean
}

/// All state of the unified engine. See the module docs for the round
/// protocol and the bit-identity argument.
#[derive(Debug)]
pub(crate) struct UnifiedEval {
    bounds: Rect,
    num_shards: usize,
    shards: Vec<Shard>,
    /// Per grid column: the shard owning it.
    col_owner: Vec<u32>,
    /// Global per-node arrays (disjointly written — each node is owned
    /// by exactly one shard; see [`NodeRefs`]).
    node_cell: Vec<u32>,
    partial_hits: Vec<Vec<u32>>,
    owned_pos: Vec<u32>,
    /// Whether the stripe indexes match the current query set.
    indexed: bool,
    /// Whether shard state describes a completed exact round.
    primed: bool,
    /// Bit pattern of the last exact round's evaluation time.
    last_t: u64,
    /// Whether rounds at an unchanged evaluation time may skip clean
    /// nodes (true in production; false reproduces the every-node
    /// incremental baseline for benchmarking).
    dirty_tracking: bool,
    /// Nodes that re-reported (or were removed) since the last exact
    /// round, deduplicated via `dirty_flag`.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    /// Nodes whose *first* report arrived since the last exact round —
    /// not yet owned by any shard.
    pending: Vec<u32>,
    /// Flat per-`(src, dst)` handoff outboxes (`src·S + dst`), reused
    /// across rounds; receivers clear their inbound column after
    /// draining it.
    routes: Vec<Vec<u32>>,
    /// Per-shard batches the coordinator builds before each round
    /// (dirty nodes by owner; pending first reports by destination).
    dirty_by_shard: Vec<Vec<u32>>,
    pending_by_shard: Vec<Vec<u32>>,
    /// Whether the stripe Δ⊣-covers match the current query set and Δ⊣.
    uindexed: bool,
    umax_delta: f64,
    /// Lazily-created worker pool (`num_shards − 1` threads). Not
    /// cloned: a cloned engine rebuilds its own pool on first use.
    pool: Option<WorkerPool>,
    /// Host parallelism, cached at construction: with one core the pool
    /// can only lose, so phases below it stay on the calling thread.
    hw: usize,
    /// Result entries emitted by the last exact round (drives the emit
    /// phase's pool-dispatch decision for the next one).
    emit_entries: usize,
    /// Whether the online re-striper is active (opt-in; also switches
    /// the *initial* boundaries from uniform to load-aware).
    rebalance: bool,
    /// Per grid column: query-cover weight normalized by the mean cover
    /// count, rebuilt with the indexes (DESIGN.md §15).
    col_qw: Vec<f64>,
    /// Per-shard load EWMA the rebalance trigger watches.
    load_ewma: Vec<f64>,
    /// Consecutive rounds the load CoV stayed above [`COV_HI`].
    hot_rounds: u32,
    /// Rounds left before the trigger may fire again.
    cooldown: u32,
    /// EWMA of exact-round wall time (excluding restripe pauses), the
    /// denominator of the migration-overhead budget.
    round_ns_ewma: f64,
    /// Cumulative re-striper accounting (see [`RestripeStats`]).
    restripes: u64,
    moved_cols: u64,
    pause_ns: u64,
}

impl Clone for UnifiedEval {
    fn clone(&self) -> Self {
        UnifiedEval {
            bounds: self.bounds,
            num_shards: self.num_shards,
            shards: self.shards.clone(),
            col_owner: self.col_owner.clone(),
            node_cell: self.node_cell.clone(),
            partial_hits: self.partial_hits.clone(),
            owned_pos: self.owned_pos.clone(),
            indexed: self.indexed,
            primed: self.primed,
            last_t: self.last_t,
            dirty_tracking: self.dirty_tracking,
            dirty: self.dirty.clone(),
            dirty_flag: self.dirty_flag.clone(),
            pending: self.pending.clone(),
            routes: self.routes.clone(),
            dirty_by_shard: self.dirty_by_shard.clone(),
            pending_by_shard: self.pending_by_shard.clone(),
            uindexed: self.uindexed,
            umax_delta: self.umax_delta,
            pool: None,
            hw: self.hw,
            emit_entries: self.emit_entries,
            rebalance: self.rebalance,
            col_qw: self.col_qw.clone(),
            load_ewma: self.load_ewma.clone(),
            hot_rounds: self.hot_rounds,
            cooldown: self.cooldown,
            round_ns_ewma: self.round_ns_ewma,
            restripes: self.restripes,
            moved_cols: self.moved_cols,
            pause_ns: self.pause_ns,
        }
    }
}

impl UnifiedEval {
    /// Creates empty state for a server over `bounds` with `shards`
    /// stripes (clamped to `1..=MAX_SHARDS`).
    pub(crate) fn new(bounds: Rect, num_nodes: usize, shards: usize) -> Self {
        UnifiedEval {
            bounds,
            num_shards: shards.clamp(1, MAX_SHARDS),
            shards: Vec::new(),
            col_owner: Vec::new(),
            node_cell: Vec::new(),
            partial_hits: Vec::new(),
            owned_pos: Vec::new(),
            indexed: false,
            primed: false,
            last_t: 0,
            dirty_tracking: true,
            dirty: Vec::new(),
            dirty_flag: vec![false; num_nodes],
            pending: Vec::new(),
            routes: Vec::new(),
            dirty_by_shard: Vec::new(),
            pending_by_shard: Vec::new(),
            uindexed: false,
            umax_delta: f64::NAN,
            pool: None,
            hw: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            emit_entries: 0,
            rebalance: false,
            col_qw: Vec::new(),
            load_ewma: Vec::new(),
            hot_rounds: 0,
            cooldown: 0,
            round_ns_ewma: 0.0,
            restripes: 0,
            moved_cols: 0,
            pause_ns: 0,
        }
    }

    /// Enables or disables the unchanged-time dirty shortcut (see the
    /// module docs; benchmarking baseline).
    pub(crate) fn set_dirty_tracking(&mut self, enabled: bool) {
        self.dirty_tracking = enabled;
    }

    /// Marks every derived structure stale (query-set change).
    pub(crate) fn invalidate(&mut self) {
        self.indexed = false;
        self.primed = false;
        self.uindexed = false;
    }

    /// Ingest hook: tracks which nodes can change membership at an
    /// unchanged evaluation time. `first_report` nodes are not owned by
    /// any shard yet and are claimed at the next round's integrate
    /// phase.
    pub(crate) fn on_ingest(&mut self, node: u32, first_report: bool) {
        let n = node as usize;
        if n >= self.dirty_flag.len() {
            self.dirty_flag.resize(n + 1, false);
        }
        if first_report {
            self.pending.push(node);
        } else if !self.dirty_flag[n] {
            self.dirty_flag[n] = true;
            self.dirty.push(node);
        }
    }

    /// Removal hook: the node must be re-placed (torn down) at the next
    /// round even if the evaluation time does not advance.
    pub(crate) fn on_remove(&mut self, node: u32) {
        let n = node as usize;
        if n >= self.dirty_flag.len() {
            self.dirty_flag.resize(n + 1, false);
        }
        if !self.dirty_flag[n] {
            self.dirty_flag[n] = true;
            self.dirty.push(node);
        }
    }

    /// Per-shard telemetry snapshot.
    pub(crate) fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStats {
                shard: i,
                columns: (shard.cols.start, shard.cols.end),
                nodes: shard.owned.len(),
                round_ns: shard.round_ns,
                handoffs: shard.handoffs,
            })
            .collect()
    }

    /// The per-column load model (DESIGN.md §15): a base epsilon (so an
    /// empty world splits uniformly) plus the column's node count scaled
    /// by its normalized query weight — a node in a query-dense column
    /// is tested against proportionally more queries per step and emits
    /// into more member lists.
    fn col_load(&self, nodes: &[u32]) -> Vec<f64> {
        nodes
            .iter()
            .zip(&self.col_qw)
            .map(|(&n, &qw)| COL_EPS + n as f64 * (1.0 + qw))
            .collect()
    }

    /// (Re)builds the stripe layout and per-shard exact indexes for the
    /// current query set. Boundaries are the uniform `side·i/s` split by
    /// default; with the re-striper enabled they come from the load
    /// model over the store's current occupancy, so the first round
    /// already starts balanced under skew.
    fn build_indexes(&mut self, queries: &[RangeQuery], store: &NodeStore, t: f64) {
        let side = side_for(queries.len());
        let s = self.num_shards;
        let num_nodes = store.len();
        // Per-column query weight, normalized by the mean cover count
        // (dimensionless, ~1 on average) so node count stays the
        // dominant term of the load model.
        let covers = col_query_covers(&self.bounds, queries);
        let mean = covers.iter().map(|&c| c as f64).sum::<f64>() / side as f64;
        self.col_qw = covers
            .iter()
            .map(|&c| if mean > 0.0 { c as f64 / mean } else { 0.0 })
            .collect();
        let bcols: Vec<usize> = if self.rebalance && s > 1 {
            let mut nodes = vec![0u32; side];
            for n in 0..num_nodes {
                if let Some(p) = store.predict(n as u32, t) {
                    nodes[axis_cell(p.x, self.bounds.min.x, self.bounds.width(), side)] += 1;
                }
            }
            solve_boundaries(&self.col_load(&nodes), s)
        } else {
            // Contiguous, near-even stripes over the cell columns (the
            // same split for any query set of the same size, so a given
            // node deterministically maps to a shard).
            (0..=s).map(|i| side * i / s).collect()
        };
        self.shards.resize_with(s, Shard::new);
        self.col_owner.clear();
        self.col_owner.resize(side, 0);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let (lo, hi) = (bcols[i], bcols[i + 1]);
            for owner in &mut self.col_owner[lo..hi] {
                *owner = i as u32;
            }
            shard.cols = lo..hi;
            shard.qindex = QueryIndex::build_cols(&self.bounds, queries, 0.0, true, lo..hi);
            shard.members.resize_with(queries.len(), Vec::new);
            shard.members.truncate(queries.len());
        }
        self.load_ewma.clear();
        self.load_ewma.resize(s, 0.0);
        self.hot_rounds = 0;
        self.node_cell.resize(num_nodes, UNOWNED);
        self.partial_hits.resize_with(num_nodes, Vec::new);
        self.owned_pos.resize(num_nodes, UNOWNED);
        if self.dirty_flag.len() < num_nodes {
            self.dirty_flag.resize(num_nodes, false);
        }
        self.routes.resize_with(s * s, Vec::new);
        self.routes.truncate(s * s);
        self.dirty_by_shard.resize_with(s, Vec::new);
        self.pending_by_shard.resize_with(s, Vec::new);
        self.indexed = true;
        self.primed = false;
        self.uindexed = false;
    }

    /// Clears the per-round change feeds after an exact round consumed
    /// them.
    fn clear_round_inputs(&mut self) {
        for &n in &self.dirty {
            self.dirty_flag[n as usize] = false;
        }
        self.dirty.clear();
        self.pending.clear();
        for bucket in self
            .dirty_by_shard
            .iter_mut()
            .chain(self.pending_by_shard.iter_mut())
        {
            bucket.clear();
        }
    }

    /// The shard owning the stripe a position falls in.
    #[inline]
    fn owner_of(&self, p: &Point) -> usize {
        let side = self.col_owner.len();
        let col = axis_cell(p.x, self.bounds.min.x, self.bounds.width(), side);
        self.col_owner[col] as usize
    }

    /// Enables or disables the online re-striper. Takes effect at the
    /// next index build; toggling mid-run forces one (the initial
    /// boundary policy changes with it).
    pub(crate) fn set_rebalance(&mut self, enabled: bool) {
        if self.rebalance != enabled {
            self.rebalance = enabled;
            self.invalidate();
        }
    }

    /// Re-striper accounting snapshot; `imbalance` is recomputed from
    /// live shard ownership on every call.
    pub(crate) fn restripe_stats(&self) -> RestripeStats {
        let loads: Vec<f64> = self.shards.iter().map(|sh| sh.owned.len() as f64).collect();
        RestripeStats {
            restripes: self.restripes,
            moved_cols: self.moved_cols,
            pause_ns: self.pause_ns,
            imbalance: cov(&loads),
        }
    }

    /// Test/benchmark hook: re-solve boundaries from live occupancy and
    /// migrate immediately, bypassing the CoV trigger. No-op before the
    /// first exact round (there is nothing to migrate). Returns the
    /// number of columns that changed owner.
    pub(crate) fn force_restripe(&mut self, queries: &[RangeQuery]) -> usize {
        if !self.indexed || !self.primed || self.num_shards < 2 {
            return 0;
        }
        self.restripe(queries, f64::INFINITY)
    }

    /// The rebalance controller, run at the end of every exact round
    /// (before the round's change feeds are cleared — it reads the
    /// per-shard dirty buckets): folds this round's activity into the
    /// load EWMA, and once the CoV has stayed above [`COV_HI`] for
    /// [`RESTRIPE_SUSTAIN`] consecutive rounds, re-solves the boundaries
    /// and migrates the difference, then holds off for at least
    /// [`RESTRIPE_COOLDOWN`] rounds — longer if the migration pause
    /// exceeded the [`RESTRIPE_PAUSE_BUDGET`] fraction of round time.
    fn maybe_restripe(&mut self, queries: &[RangeQuery]) {
        if !self.rebalance || self.num_shards < 2 {
            return;
        }
        for (i, ewma) in self.load_ewma.iter_mut().enumerate() {
            let inst = self.shards[i].owned.len() as f64
                + DIRTY_WEIGHT * self.dirty_by_shard[i].len() as f64;
            *ewma += EWMA_ALPHA * (inst - *ewma);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        if cov(&self.load_ewma) <= COV_HI {
            self.hot_rounds = 0;
            return;
        }
        self.hot_rounds += 1;
        if self.hot_rounds < RESTRIPE_SUSTAIN {
            return;
        }
        self.hot_rounds = 0;
        let pause_before = self.pause_ns;
        self.restripe(queries, RESTRIPE_MIN_GAIN);
        // Stretch the cooldown until the pause just paid fits the
        // amortized budget (never below the hysteresis floor).
        let pause = (self.pause_ns - pause_before) as f64;
        let budget_rounds = if self.round_ns_ewma > 0.0 {
            (pause / (RESTRIPE_PAUSE_BUDGET * self.round_ns_ewma)).ceil()
        } else {
            0.0
        };
        self.cooldown = (budget_rounds as u32).max(RESTRIPE_COOLDOWN);
    }

    /// One rebalance: count live nodes per column, re-solve the
    /// boundaries over the load model, and migrate whatever moved —
    /// unless the solver's predicted peak load is not below `min_gain` ×
    /// the current assignment's (pass `f64::INFINITY` to migrate
    /// unconditionally, as [`force_restripe`](Self::force_restripe)
    /// does).
    fn restripe(&mut self, queries: &[RangeQuery], min_gain: f64) -> usize {
        let start = Instant::now();
        let side = self.col_owner.len();
        let mut nodes = vec![0u32; side];
        for shard in &self.shards {
            for &n in &shard.owned {
                nodes[self.node_cell[n as usize] as usize % side] += 1;
            }
        }
        let load = self.col_load(&nodes);
        let bcols = solve_boundaries(&load, self.num_shards);
        let mut cur = vec![0.0f64; self.num_shards];
        for (c, &l) in load.iter().enumerate() {
            cur[self.col_owner[c] as usize] += l;
        }
        let cur_peak = cur.iter().fold(0.0f64, |a, &b| a.max(b));
        let new_peak = (0..self.num_shards)
            .map(|i| load[bcols[i]..bcols[i + 1]].iter().sum::<f64>())
            .fold(0.0f64, f64::max);
        if new_peak > cur_peak * min_gain {
            self.pause_ns += start.elapsed().as_nanos() as u64;
            return 0;
        }
        let moved = self.apply_boundaries(&bcols, queries);
        if moved > 0 {
            self.restripes += 1;
            self.moved_cols += moved as u64;
        }
        self.pause_ns += start.elapsed().as_nanos() as u64;
        moved
    }

    /// Migrates whole cell columns to a new boundary vector, between
    /// rounds, on the coordinating thread. A moving node's SoA entries,
    /// member-list entries, and index rows move together, and the
    /// resulting state is exactly what a fresh rebuild at the new
    /// boundaries would produce — per-cell index lists are
    /// stripe-invariant (boundary replication, see the module docs), and
    /// a node's partial-hit list depends only on its position, so
    /// re-registering `full_at(cell) + hits` on the new owner
    /// reconstructs its memberships without a single geometry retest.
    /// Returns the number of columns that changed owner.
    fn apply_boundaries(&mut self, bcols: &[usize], queries: &[RangeQuery]) -> usize {
        let s = self.num_shards;
        let side = self.col_owner.len();
        let mut new_owner = vec![0u32; side];
        for i in 0..s {
            for owner in &mut new_owner[bcols[i]..bcols[i + 1]] {
                *owner = i as u32;
            }
        }
        let moved = (0..side)
            .filter(|&c| new_owner[c] != self.col_owner[c])
            .count();
        if moved == 0 {
            return 0;
        }
        // Pass A — extract: every node whose column changes owner drops
        // its member-list entries on the old shard, scanned in
        // deterministic (shard, owned-position) order. The node's cell
        // and partial-hit list are left intact — they are exactly what
        // the new owner re-registers.
        let mut movers: Vec<(u32, u32)> = Vec::new();
        for (src, shard) in self.shards.iter_mut().enumerate() {
            let Shard {
                qindex,
                members,
                owned,
                ..
            } = shard;
            let mut k = 0;
            while k < owned.len() {
                let n = owned[k] as usize;
                let cell = self.node_cell[n] as usize;
                let dst = new_owner[cell % side];
                if dst as usize == src {
                    k += 1;
                    continue;
                }
                let slot = qindex.slot_of_cell(cell);
                for &q in qindex.full_at(slot) {
                    remove_member(members, q, n as u32);
                }
                for &q in self.partial_hits[n].iter() {
                    remove_member(members, q, n as u32);
                }
                owned.swap_remove(k);
                self.owned_pos[n] = UNOWNED;
                if let Some(&m) = owned.get(k) {
                    self.owned_pos[m as usize] = k as u32;
                }
                movers.push((dst, n as u32));
            }
        }
        // Pass B — re-clip: rebuild the stripe index of every shard
        // whose column range changed and install the new ownership map.
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let cols = bcols[i]..bcols[i + 1];
            if shard.cols != cols {
                shard.qindex =
                    QueryIndex::build_cols(&self.bounds, queries, 0.0, true, cols.clone());
                shard.cols = cols;
            }
        }
        self.col_owner = new_owner;
        // The stripe-clipped Δ⊣ covers are stale for resized shards.
        self.uindexed = false;
        // Pass C — insert: register each mover on its new owner (whose
        // index was just rebuilt to include the node's column).
        for &(dst, node) in &movers {
            let n = node as usize;
            let Shard {
                qindex,
                members,
                owned,
                ..
            } = &mut self.shards[dst as usize];
            let slot = qindex.slot_of_cell(self.node_cell[n] as usize);
            for &q in qindex.full_at(slot) {
                insert_member(members, q, node);
            }
            for &q in self.partial_hits[n].iter() {
                insert_member(members, q, node);
            }
            self.owned_pos[n] = owned.len() as u32;
            owned.push(node);
        }
        moved
    }

    /// One exact evaluation round at time `t`, writing sorted
    /// [`QueryResult`]s into `out`. With `sequential`, every phase of
    /// every shard runs on the calling thread in shard order — same
    /// state transitions, no pool.
    pub(crate) fn evaluate_into(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        out: &mut Vec<QueryResult>,
        sequential: bool,
    ) {
        let round_start = Instant::now();
        if !self.indexed {
            self.build_indexes(queries, store, t);
        }
        let s = self.num_shards;
        let rebuild = !self.primed;
        let same_t = self.dirty_tracking && self.primed && self.last_t == t.to_bits();
        let nq = queries.len();
        out.resize_with(nq, QueryResult::default);
        out.truncate(nq);

        // Coordinator prep: batch the round's change feed per shard.
        let mut step_targets: Vec<usize> = Vec::with_capacity(s);
        let mut integrate_targets: Vec<usize> = Vec::with_capacity(s);
        if rebuild {
            // Full rebuild: reset the global per-node arrays and any
            // stale outboxes; every shard participates in the step
            // phase, nothing integrates.
            self.node_cell.fill(UNOWNED);
            self.owned_pos.fill(UNOWNED);
            for hits in &mut self.partial_hits {
                hits.clear();
            }
            for outbox in &mut self.routes {
                outbox.clear();
            }
            step_targets.extend(0..s);
        } else {
            if same_t {
                // Bucket dirty nodes by owning shard (derived from the
                // node's current cell — columns map to shards).
                let side = self.col_owner.len();
                for &node in &self.dirty {
                    let cell = self.node_cell[node as usize];
                    if cell == UNOWNED {
                        continue; // pending or already removed, never placed
                    }
                    let owner = self.col_owner[cell as usize % side] as usize;
                    self.dirty_by_shard[owner].push(node);
                }
                step_targets.extend((0..s).filter(|&i| !self.dirty_by_shard[i].is_empty()));
            } else {
                step_targets.extend((0..s).filter(|&i| !self.shards[i].owned.is_empty()));
            }
            // Route pending first reports to their destination stripe.
            for &node in &self.pending {
                if self.node_cell[node as usize] != UNOWNED {
                    continue; // re-placed via the dirty path (remove/re-ingest)
                }
                let Some(p) = store.predict(node, t) else {
                    continue; // removed again before any round saw it
                };
                let owner = self.owner_of(&p);
                self.pending_by_shard[owner].push(node);
            }
        }

        // Adaptive dispatch: the pool costs two channel hops per worker
        // per phase, so small rounds — and every round on a single-core
        // host — run on the calling thread. The decision is free to vary
        // per round because pooled and sequential execution are
        // state-identical (the equivalence suite pins this).
        let step_work = if same_t {
            self.dirty.len()
        } else {
            store.len()
        };
        let par = !sequential && s > 1 && self.hw > 1;
        let par_step = par && step_work >= PAR_STEP_MIN;
        let par_emit = par
            && if rebuild {
                store.len() >= PAR_EMIT_MIN
            } else {
                self.emit_entries >= PAR_EMIT_MIN
            };
        let pool: Option<&WorkerPool> = if par_step || par_emit {
            Some(self.pool.get_or_insert_with(|| WorkerPool::new(s - 1)))
        } else {
            None
        };
        let run_on = |targets: &[usize], f: &(dyn Fn(usize) + Sync)| match pool {
            Some(p) if par_step => p.run_on(targets, f),
            _ => {
                for &i in targets {
                    f(i);
                }
            }
        };

        let shards = SendMutPtr(self.shards.as_mut_ptr());
        let routes = SendMutPtr(self.routes.as_mut_ptr());
        let out_ptr = SendMutPtr(out.as_mut_ptr());
        let refs = NodeRefs {
            cell: SendMutPtr(self.node_cell.as_mut_ptr()),
            hits: SendMutPtr(self.partial_hits.as_mut_ptr()),
            pos: SendMutPtr(self.owned_pos.as_mut_ptr()),
        };
        let col_owner = &self.col_owner;
        let dirty_by_shard = &self.dirty_by_shard;
        let pending_by_shard = &self.pending_by_shard;

        // Phase 1 — step: each active worker exclusively owns shard i,
        // outbox row i, and the per-node entries of the nodes shard i
        // owns.
        run_on(&step_targets, &|i: usize| {
            // SAFETY: exclusive per-index access, see SendMutPtr/NodeRefs.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let routes_row = unsafe { std::slice::from_raw_parts_mut(routes.ptr().add(i * s), s) };
            let start = Instant::now();
            if rebuild {
                shard.rebuild(queries, store, t, refs);
            } else if same_t {
                shard.dirty_round(
                    &dirty_by_shard[i],
                    queries,
                    store,
                    t,
                    routes_row,
                    col_owner,
                    refs,
                );
            } else {
                shard.sweep_round(queries, store, t, routes_row, col_owner, refs);
            }
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Phase 2 — integrate: each receiving worker drains (and clears)
        // the outbox column addressed to its shard and claims its
        // pre-routed pending arrivals. Skipped outright when no node
        // crossed a stripe and nothing is pending.
        if !rebuild {
            for i in 0..s {
                let inbound = (0..s).any(|src| !self.routes[src * s + i].is_empty());
                if inbound || !self.pending_by_shard[i].is_empty() {
                    integrate_targets.push(i);
                }
            }
            run_on(&integrate_targets, &|i: usize| {
                // SAFETY: shard i and outbox column i are touched by this
                // worker only; claimed nodes' per-node entries are
                // disjoint (each node is routed to exactly one stripe).
                let shard = unsafe { &mut *shards.ptr().add(i) };
                let start = Instant::now();
                for src in 0..s {
                    let outbox = unsafe { &mut *routes.ptr().add(src * s + i) };
                    for &n in outbox.iter() {
                        shard.claim(n as usize, queries, store, t, refs);
                    }
                    outbox.clear();
                }
                for &n in &pending_by_shard[i] {
                    shard.claim_pending(n as usize, queries, store, t, refs);
                }
                shard.round_ns += start.elapsed().as_nanos() as u64;
            });
        }

        // Phase 3 — emit: shards are read-only. At one shard this is a
        // straight copy of the member lists; otherwise each worker
        // k-way-merges the member lists of its contiguous query chunk.
        if s == 1 {
            let shard = &self.shards[0];
            for ((slot, query), members) in out.iter_mut().zip(queries).zip(&shard.members) {
                slot.query = query.id;
                slot.nodes.clear();
                slot.nodes.extend_from_slice(members);
            }
        } else {
            let run_all = |f: &(dyn Fn(usize) + Sync)| match pool {
                Some(p) if par_emit => p.broadcast(s, f),
                _ => {
                    for i in 0..s {
                        f(i);
                    }
                }
            };
            run_all(&|i: usize| {
                // SAFETY: shards read-only for the whole phase; out slots
                // are written by exactly one worker (disjoint chunks).
                let shards_ro: &[Shard] = unsafe { std::slice::from_raw_parts(shards.ptr(), s) };
                let mut srcs: Vec<&[u32]> = vec![&[]; s];
                let chunk = nq * i / s..nq * (i + 1) / s;
                for (q, query) in queries.iter().enumerate().take(chunk.end).skip(chunk.start) {
                    let slot = unsafe { &mut *out_ptr.ptr().add(q) };
                    slot.query = query.id;
                    slot.nodes.clear();
                    for (si, shard) in shards_ro.iter().enumerate() {
                        srcs[si] = &shard.members[q];
                    }
                    merge_into(&srcs, &mut slot.nodes);
                }
            });
        }

        self.emit_entries = out.iter().map(|r| r.nodes.len()).sum();
        self.primed = true;
        self.last_t = t.to_bits();
        let round_ns = round_start.elapsed().as_nanos() as f64;
        self.round_ns_ewma += EWMA_ALPHA * (round_ns - self.round_ns_ewma);
        self.maybe_restripe(queries);
        self.clear_round_inputs();
    }

    /// One uncertain evaluation round: every shard classifies its
    /// stripe's nodes against the Δ⊣-expanded covers, then the per-shard
    /// must/maybe lists are merged per query. Stateless between rounds
    /// (per-node Δ changes freely).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_uncertain_into(
        &mut self,
        queries: &[RangeQuery],
        store: &NodeStore,
        t: f64,
        max_delta: f64,
        delta_of: &(dyn Fn(u32, Point) -> f64 + Sync),
        out: &mut Vec<UncertainResult>,
        sequential: bool,
    ) {
        if !self.indexed {
            self.build_indexes(queries, store, t);
        }
        if !self.uindexed || self.umax_delta.to_bits() != max_delta.to_bits() {
            for shard in &mut self.shards {
                shard.ucover = QueryIndex::build_cols(
                    &self.bounds,
                    queries,
                    max_delta,
                    false,
                    shard.cols.clone(),
                );
            }
            self.umax_delta = max_delta;
            self.uindexed = true;
        }
        let s = self.num_shards;
        let nq = queries.len();
        out.resize_with(nq, UncertainResult::default);
        out.truncate(nq);

        // Adaptive dispatch, as in the exact round: the classify phase
        // scans the store per shard, so its work measure is store size.
        let pool: Option<&WorkerPool> =
            if sequential || s == 1 || self.hw <= 1 || store.len() < PAR_STEP_MIN {
                None
            } else {
                Some(self.pool.get_or_insert_with(|| WorkerPool::new(s - 1)))
            };
        let run = |f: &(dyn Fn(usize) + Sync)| match pool {
            Some(p) => p.broadcast(s, f),
            None => {
                for i in 0..s {
                    f(i);
                }
            }
        };

        let shards = SendMutPtr(self.shards.as_mut_ptr());
        let out_ptr = SendMutPtr(out.as_mut_ptr());

        // Classify: each worker exclusively owns shard i.
        run(&|i: usize| {
            // SAFETY: exclusive per-index access, see SendMutPtr.
            let shard = unsafe { &mut *shards.ptr().add(i) };
            let start = Instant::now();
            shard.uncertain_round(queries, store, t, max_delta, delta_of);
            shard.round_ns += start.elapsed().as_nanos() as u64;
        });

        // Emit: a copy at one shard, else shards read-only with disjoint
        // query chunks per worker.
        if s == 1 {
            let shard = &self.shards[0];
            for (q, (slot, query)) in out.iter_mut().zip(queries).enumerate() {
                slot.query = query.id;
                slot.must.clear();
                slot.must.extend_from_slice(&shard.must[q]);
                slot.maybe.clear();
                slot.maybe.extend_from_slice(&shard.maybe[q]);
            }
            return;
        }
        run(&|i: usize| {
            // SAFETY: see the exact emit phase.
            let shards_ro: &[Shard] = unsafe { std::slice::from_raw_parts(shards.ptr(), s) };
            let mut srcs: Vec<&[u32]> = vec![&[]; s];
            let chunk = nq * i / s..nq * (i + 1) / s;
            for (q, query) in queries.iter().enumerate().take(chunk.end).skip(chunk.start) {
                let slot = unsafe { &mut *out_ptr.ptr().add(q) };
                slot.query = query.id;
                slot.must.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.must[q];
                }
                merge_into(&srcs, &mut slot.must);
                slot.maybe.clear();
                for (si, shard) in shards_ro.iter().enumerate() {
                    srcs[si] = &shard.maybe[q];
                }
                merge_into(&srcs, &mut slot.maybe);
            }
        });
    }
}

// The simulation pipeline moves whole servers (and therefore engines)
// into per-policy lane threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<UnifiedEval>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_empty_single_and_many() {
        let mut out = Vec::new();
        merge_into(&[&[], &[]], &mut out);
        assert!(out.is_empty());
        merge_into(&[&[1, 5, 9], &[]], &mut out);
        assert_eq!(out, vec![1, 5, 9]);
        out.clear();
        merge_into(&[&[2, 8], &[1, 5, 9], &[0, 10]], &mut out);
        assert_eq!(out, vec![0, 1, 2, 5, 8, 9, 10]);
    }

    #[test]
    fn boundary_solver_splits_uniform_load_evenly() {
        let load = vec![1.0; 8];
        assert_eq!(solve_boundaries(&load, 4), vec![0, 2, 4, 6, 8]);
        assert_eq!(solve_boundaries(&load, 1), vec![0, 8]);
        // An all-epsilon (empty-world) load behaves the same.
        let empty = vec![COL_EPS; 8];
        assert_eq!(solve_boundaries(&empty, 4), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn boundary_solver_narrows_the_hot_stripe() {
        // All weight on columns 0..2: the first shards own single hot
        // columns and the tail shards split the cold remainder.
        let mut load = vec![COL_EPS; 8];
        load[0] = 100.0;
        load[1] = 100.0;
        let b = solve_boundaries(&load, 4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 8);
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "monotone: {b:?}");
        assert_eq!(b[1], 1, "first shard owns exactly the first hot column");
        assert!(
            b[1..4].contains(&1),
            "some boundary separates the two hot columns: {b:?}"
        );
        // No shard owns both hot columns.
        let owner_of = |c: usize| b.iter().take_while(|&&x| x <= c).count();
        assert_ne!(owner_of(0), owner_of(1), "{b:?}");
    }

    #[test]
    fn cov_is_zero_when_balanced_and_grows_with_skew() {
        assert_eq!(cov(&[]), 0.0);
        assert_eq!(cov(&[5.0]), 0.0);
        assert_eq!(cov(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
        let mild = cov(&[4.0, 5.0, 6.0]);
        let wild = cov(&[0.0, 1.0, 14.0]);
        assert!(mild > 0.0 && wild > mild, "mild {mild} wild {wild}");
    }

    #[test]
    fn pool_broadcast_runs_every_index_and_reuses_workers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        pool.broadcast(4, &|i| {
            sum.fetch_add(1 << (8 * i), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 0x01010101);
        // Reuse across rounds: same workers, fresh closure.
        for _ in 0..100 {
            pool.broadcast(4, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 0x01010101 + 600);
    }

    #[test]
    fn pool_smaller_broadcasts_are_fine() {
        let pool = WorkerPool::new(7);
        let hits = std::sync::Mutex::new(Vec::new());
        pool.broadcast(2, &|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn pool_run_on_dispatches_sparse_targets() {
        let pool = WorkerPool::new(3);
        let hits = std::sync::Mutex::new(Vec::new());
        pool.run_on(&[], &|i| hits.lock().unwrap().push(i));
        pool.run_on(&[2], &|i| hits.lock().unwrap().push(i));
        pool.run_on(&[0, 3], &|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 3]);
    }
}
