//! Property-based equivalence suite for the CQ evaluation engines:
//! unified-incremental ≡ legacy per-query ≡ brute force, on both
//! `PredictedGrid` and `TprTree`, for `evaluate`, `evaluate_uncertain`,
//! and `nearest`. The unified engine runs at the shard count the CI
//! matrix selects via `LIRA_TEST_SHARDS` (default 1, the degenerate
//! single-stripe case).
//!
//! Every generated coordinate is a multiple of 62.5 m (exactly
//! representable in binary) over a 1 km² space with 8×8 index cells of
//! 125 m — so nodes routinely land *exactly* on query-range borders and
//! index-cell boundaries, the places where the engines' different
//! traversal orders could disagree. Positions outside the bounds exercise
//! the clamped border cells.

// The whole battery compares against the legacy oracle.
#![cfg(feature = "legacy-oracle")]

use lira_core::geometry::{Point, Rect};
use lira_server::prelude::*;
use proptest::prelude::*;

/// The coordinate lattice unit (m); binary-exact, half a 125 m index cell.
const U: f64 = 62.5;
const NUM_NODES: usize = 24;

fn bounds() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

#[derive(Clone, Debug)]
struct Update {
    node: u32,
    t: f64,
    pos: Point,
    vel: (f64, f64),
}

fn updates(max: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (
            0u32..NUM_NODES as u32,
            0u32..5,
            -2i32..19,
            -2i32..19,
            -2i32..3,
            -2i32..3,
        )
            .prop_map(|(node, k, i, j, vi, vj)| Update {
                node,
                t: k as f64,
                pos: Point::new(i as f64 * U, j as f64 * U),
                vel: (vi as f64 * 6.25, vj as f64 * 6.25),
            }),
        1..max,
    )
}

fn query_set(max: usize) -> impl Strategy<Value = Vec<RangeQuery>> {
    prop::collection::vec(
        (-1i32..17, -1i32..17, 1i32..8, 1i32..8).prop_map(|(i, j, w, h)| {
            Rect::from_coords(
                i as f64 * U,
                j as f64 * U,
                (i + w) as f64 * U,
                (j + h) as f64 * U,
            )
        }),
        1..max,
    )
    .prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(id, range)| RangeQuery {
                id: id as u32,
                range,
            })
            .collect()
    })
}

/// `(model time, origin, velocity)` — the oracle's motion model.
type Model = (f64, Point, (f64, f64));

/// The brute-force oracle: last-writer-wins motion models with the node
/// store's exact staleness rule (reject strictly older, accept ties) and
/// the same prediction arithmetic, evaluated by full scans.
#[derive(Clone)]
struct Oracle {
    models: Vec<Option<Model>>,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            models: vec![None; NUM_NODES],
        }
    }

    fn apply(&mut self, u: &Update) {
        let slot = &mut self.models[u.node as usize];
        if let Some((time, _, _)) = slot {
            if *time > u.t {
                return;
            }
        }
        *slot = Some((u.t, u.pos, u.vel));
    }

    fn predict(&self, node: usize, t: f64) -> Option<Point> {
        self.models[node].map(|(time, origin, vel)| {
            let dt = t - time;
            Point::new(origin.x + vel.0 * dt, origin.y + vel.1 * dt)
        })
    }

    fn evaluate(&self, queries: &[RangeQuery], t: f64) -> Vec<QueryResult> {
        queries
            .iter()
            .map(|q| QueryResult {
                query: q.id,
                nodes: (0..NUM_NODES)
                    .filter(|&n| self.predict(n, t).is_some_and(|p| q.range.contains(&p)))
                    .map(|n| n as u32)
                    .collect(),
            })
            .collect()
    }

    /// The uncertain-membership specification: `must` ⇔ the prediction is
    /// inside with interior depth ≥ the node's Δ; `maybe` ⇔ not must but
    /// within Δ of the range. Candidate-set independent by construction.
    fn evaluate_uncertain(
        &self,
        queries: &[RangeQuery],
        t: f64,
        max_delta: f64,
        delta_of: impl Fn(u32, Point) -> f64,
    ) -> Vec<UncertainResult> {
        queries
            .iter()
            .map(|q| {
                let mut must = Vec::new();
                let mut maybe = Vec::new();
                for n in 0..NUM_NODES {
                    let Some(p) = self.predict(n, t) else {
                        continue;
                    };
                    let delta = delta_of(n as u32, p).clamp(0.0, max_delta);
                    if q.range.contains(&p) && q.range.interior_depth(&p) >= delta {
                        must.push(n as u32);
                    } else if q.range.distance_to_point(&p) <= delta {
                        maybe.push(n as u32);
                    }
                }
                UncertainResult {
                    query: q.id,
                    must,
                    maybe,
                }
            })
            .collect()
    }

    fn nearest(&self, center: Point, k: usize, t: f64) -> Vec<(u32, f64)> {
        let mut hits: Vec<(u32, f64)> = (0..NUM_NODES)
            .filter_map(|n| self.predict(n, t).map(|p| (n as u32, p.distance(&center))))
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

/// All four engine × index combinations under test, fed identically.
struct Quad {
    grid_uni: CqServer,
    grid_leg: CqServer,
    tpr_uni: CqServer<TprTree>,
    tpr_leg: CqServer<TprTree>,
}

impl Quad {
    fn new(queries: &[RangeQuery]) -> Self {
        let b = bounds();
        let engine = EvalEngine::unified_from_env(1);
        let mut quad = Quad {
            grid_uni: CqServer::new(b, NUM_NODES, 8).with_engine(engine),
            grid_leg: CqServer::new(b, NUM_NODES, 8).with_engine(EvalEngine::Legacy),
            tpr_uni: CqServer::with_index(b, NUM_NODES, TprTree::new(60.0)).with_engine(engine),
            tpr_leg: CqServer::with_index(b, NUM_NODES, TprTree::new(60.0))
                .with_engine(EvalEngine::Legacy),
        };
        quad.grid_uni.register_queries(queries.iter().copied());
        quad.grid_leg.register_queries(queries.iter().copied());
        quad.tpr_uni.register_queries(queries.iter().copied());
        quad.tpr_leg.register_queries(queries.iter().copied());
        quad
    }

    fn ingest(&mut self, u: &Update) {
        self.grid_uni.ingest(u.node, u.t, u.pos, u.vel);
        self.grid_leg.ingest(u.node, u.t, u.pos, u.vel);
        self.tpr_uni.ingest(u.node, u.t, u.pos, u.vel);
        self.tpr_leg.ingest(u.node, u.t, u.pos, u.vel);
    }

    fn replace(&mut self, queries: &[RangeQuery]) {
        self.grid_uni.replace_queries(queries.iter().copied());
        self.grid_leg.replace_queries(queries.iter().copied());
        self.tpr_uni.replace_queries(queries.iter().copied());
        self.tpr_leg.replace_queries(queries.iter().copied());
    }
}

/// The deterministic per-node Δ both the servers and the oracle use in
/// uncertain evaluation (binary-exact multiples of U/4).
fn delta_of(n: u32, _p: Point) -> f64 {
    (n % 4) as f64 * 15.625
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn evaluate_equivalent_across_engines_and_rounds(
        ups in updates(60),
        qs in query_set(8),
        qs2 in query_set(5),
    ) {
        let mut quad = Quad::new(&qs);
        let mut oracle = Oracle::new();
        // Interleave ingest and evaluation so the unified engine runs
        // genuine incremental rounds (round 0 is its full rebuild).
        for (round, chunk) in ups.chunks(8).enumerate() {
            for u in chunk {
                quad.ingest(u);
                oracle.apply(u);
            }
            let t = round as f64 + 0.5;
            let want = oracle.evaluate(&qs, t);
            prop_assert_eq!(&quad.grid_uni.evaluate(t), &want, "grid/unified t={}", t);
            prop_assert_eq!(&quad.grid_leg.evaluate(t), &want, "grid/legacy t={}", t);
            prop_assert_eq!(&quad.tpr_uni.evaluate(t), &want, "tpr/unified t={}", t);
            prop_assert_eq!(&quad.tpr_leg.evaluate(t), &want, "tpr/legacy t={}", t);
        }
        // Workload swap: the query index must invalidate and rebuild.
        quad.replace(&qs2);
        let t = 9.0;
        let want = oracle.evaluate(&qs2, t);
        prop_assert_eq!(&quad.grid_uni.evaluate(t), &want, "grid/unified after swap");
        prop_assert_eq!(&quad.tpr_uni.evaluate(t), &want, "tpr/unified after swap");
    }

    #[test]
    fn evaluate_uncertain_equivalent_across_engines(
        ups in updates(50),
        qs in query_set(6),
        dmax_step in 1i32..4,
    ) {
        // Δ⊣ at binary-exact multiples of half a cell, so expanded query
        // edges also align with cell boundaries (the hardest case for
        // candidate gathering).
        let max_delta = dmax_step as f64 * 31.25;
        let mut quad = Quad::new(&qs);
        let mut oracle = Oracle::new();
        for (round, chunk) in ups.chunks(10).enumerate() {
            for u in chunk {
                quad.ingest(u);
                oracle.apply(u);
            }
            let t = round as f64 + 0.25;
            let want = oracle.evaluate_uncertain(&qs, t, max_delta, delta_of);
            prop_assert_eq!(
                &quad.grid_uni.evaluate_uncertain(t, max_delta, delta_of),
                &want, "grid/unified t={}", t
            );
            prop_assert_eq!(
                &quad.grid_leg.evaluate_uncertain(t, max_delta, delta_of),
                &want, "grid/legacy t={}", t
            );
            prop_assert_eq!(
                &quad.tpr_uni.evaluate_uncertain(t, max_delta, delta_of),
                &want, "tpr/unified t={}", t
            );
            prop_assert_eq!(
                &quad.tpr_leg.evaluate_uncertain(t, max_delta, delta_of),
                &want, "tpr/legacy t={}", t
            );
        }
    }

    #[test]
    fn nearest_equivalent_across_engines(
        ups in updates(40),
        qs in query_set(3),
        ci in -1i32..18,
        cj in -1i32..18,
        k in 0usize..8,
    ) {
        let center = Point::new(ci as f64 * U, cj as f64 * U);
        let mut quad = Quad::new(&qs);
        let mut oracle = Oracle::new();
        for u in &ups {
            quad.ingest(u);
            oracle.apply(u);
        }
        let t = 4.0;
        let want = oracle.nearest(center, k, t);
        prop_assert_eq!(&quad.grid_uni.nearest(center, k, t), &want, "grid/unified");
        prop_assert_eq!(&quad.grid_leg.nearest(center, k, t), &want, "grid/legacy");
        prop_assert_eq!(&quad.tpr_uni.nearest(center, k, t), &want, "tpr/unified");
        prop_assert_eq!(&quad.tpr_leg.nearest(center, k, t), &want, "tpr/legacy");
    }
}

/// Hand-picked border geometry: nodes exactly on the inclusive min edge,
/// the exclusive max edge, cell boundaries, and outside the bounds.
#[test]
fn border_points_resolve_identically_on_every_engine() {
    let range = Rect::from_coords(250.0, 250.0, 500.0, 500.0);
    let qs = [RangeQuery { id: 0, range }];
    let mut quad = Quad::new(&qs);
    let mut oracle = Oracle::new();
    let cases = [
        Point::new(250.0, 250.0),   // min corner: inside (half-open)
        Point::new(500.0, 500.0),   // max corner: outside
        Point::new(500.0, 300.0),   // max x edge: outside
        Point::new(250.0, 499.999), // min x edge: inside
        Point::new(375.0, 250.0),   // min y edge, on a cell boundary
        Point::new(-62.5, 300.0),   // out of bounds west (clamped cell)
        Point::new(300.0, 1062.5),  // out of bounds north
        Point::new(499.999, 499.999),
    ];
    for (n, p) in cases.iter().enumerate() {
        let u = Update {
            node: n as u32,
            t: 0.0,
            pos: *p,
            vel: (0.0, 0.0),
        };
        quad.ingest(&u);
        oracle.apply(&u);
    }
    let want = oracle.evaluate(&qs, 0.0);
    assert_eq!(quad.grid_uni.evaluate(0.0), want);
    assert_eq!(quad.grid_leg.evaluate(0.0), want);
    assert_eq!(quad.tpr_uni.evaluate(0.0), want);
    assert_eq!(quad.tpr_leg.evaluate(0.0), want);
    // Nodes sitting at distance exactly Δ from the range must classify
    // identically too (the maybe-boundary).
    let want = oracle.evaluate_uncertain(&qs, 0.0, 62.5, |_, _| 62.5);
    assert_eq!(
        quad.grid_uni.evaluate_uncertain(0.0, 62.5, |_, _| 62.5),
        want
    );
    assert_eq!(
        quad.grid_leg.evaluate_uncertain(0.0, 62.5, |_, _| 62.5),
        want
    );
    assert_eq!(
        quad.tpr_uni.evaluate_uncertain(0.0, 62.5, |_, _| 62.5),
        want
    );
    assert_eq!(
        quad.tpr_leg.evaluate_uncertain(0.0, 62.5, |_, _| 62.5),
        want
    );
    // Zero Δ degenerates to exact evaluation for `must`; `maybe` shrinks
    // to exactly the nodes sitting *on* the closed boundary (distance 0
    // but outside the half-open rect).
    let exact = oracle.evaluate(&qs, 0.0);
    let zero = quad.grid_uni.evaluate_uncertain(0.0, 0.0, |_, _| 0.0);
    assert_eq!(zero[0].must, exact[0].nodes);
    assert_eq!(zero, quad.grid_leg.evaluate_uncertain(0.0, 0.0, |_, _| 0.0));
    for &n in &zero[0].maybe {
        let p = oracle.predict(n as usize, 0.0).unwrap();
        assert!(!range.contains(&p));
        assert_eq!(range.distance_to_point(&p), 0.0, "node {n} at {p:?}");
    }
}
