//! Re-striping correctness battery (DESIGN.md §15): interleaves churn,
//! query replacement, and *forced* column migrations, and asserts every
//! rebalanced configuration stays bit-identical to the `shards = 1`
//! oracle — migration happens between rounds, so it must be invisible
//! in results. A deterministic hotspot test then exercises the organic
//! trigger path (CoV + hysteresis) end to end.
//!
//! Coordinates use the binary-exact 62.5 m lattice from
//! `shard_equiv.rs`; queries are pinned so the evaluation grid has
//! exactly 8 columns and migrations move whole 125 m columns.

use lira_core::geometry::{Point, Rect};
use lira_server::prelude::*;
use proptest::prelude::*;

/// The coordinate lattice unit (m); binary-exact.
const U: f64 = 62.5;
const NUM_NODES: usize = 24;

fn bounds() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

#[derive(Clone, Debug)]
struct Update {
    node: u32,
    t: f64,
    pos: Point,
    vel: (f64, f64),
}

fn updates(max: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (
            0u32..NUM_NODES as u32,
            0u32..5,
            -2i32..19,
            -2i32..19,
            -4i32..5,
            -2i32..3,
        )
            .prop_map(|(node, k, i, j, vi, vj)| Update {
                node,
                t: k as f64,
                pos: Point::new(i as f64 * U, j as f64 * U),
                vel: (vi as f64 * 6.25, vj as f64 * 6.25),
            }),
        1..max,
    )
}

fn query_set(max: usize) -> impl Strategy<Value = Vec<RangeQuery>> {
    prop::collection::vec(
        (-1i32..17, -1i32..17, 1i32..8, 1i32..8).prop_map(|(i, j, w, h)| {
            Rect::from_coords(
                i as f64 * U,
                j as f64 * U,
                (i + w) as f64 * U,
                (j + h) as f64 * U,
            )
        }),
        1..max,
    )
    .prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(id, range)| RangeQuery {
                id: id as u32,
                range,
            })
            .collect()
    })
}

/// The deterministic per-node Δ for uncertain rounds (multiples of U/4).
fn delta_of(n: u32, _p: Point) -> f64 {
    (n % 4) as f64 * 15.625
}

/// The `shards = 1` oracle plus rebalance-enabled servers at several
/// shard counts (both builder orders — the flag must survive
/// `with_engine` — and one pool-free sequential run).
struct Fleet {
    oracle: CqServer,
    rebalanced: Vec<(usize, CqServer)>,
}

impl Fleet {
    fn new(queries: &[RangeQuery]) -> Self {
        let b = bounds();
        let rebalanced = vec![
            (
                2,
                CqServer::new(b, NUM_NODES, 8)
                    .with_engine(EvalEngine::Unified { shards: 2 })
                    .with_rebalance(true),
            ),
            (
                3,
                CqServer::new(b, NUM_NODES, 8)
                    .with_rebalance(true)
                    .with_engine(EvalEngine::Unified { shards: 3 })
                    .with_sequential_eval(true),
            ),
            (
                8,
                CqServer::new(b, NUM_NODES, 8)
                    .with_engine(EvalEngine::Unified { shards: 8 })
                    .with_rebalance(true),
            ),
        ];
        let mut fleet = Fleet {
            oracle: CqServer::new(b, NUM_NODES, 8),
            rebalanced,
        };
        fleet.oracle.register_queries(queries.iter().copied());
        for (_, s) in &mut fleet.rebalanced {
            s.register_queries(queries.iter().copied());
        }
        fleet
    }

    fn ingest(&mut self, u: &Update) {
        self.oracle.ingest(u.node, u.t, u.pos, u.vel);
        for (_, s) in &mut self.rebalanced {
            s.ingest(u.node, u.t, u.pos, u.vel);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Churn + query replacement + a forced migration between every
    /// round pair, alternating whether the migration lands before or
    /// after fresh ingests (a rebalance must be safe with dirty/pending
    /// feeds queued) — always bit-identical to `shards = 1`.
    #[test]
    fn forced_restripes_never_change_results(
        ups in updates(60),
        qs in query_set(8),
        qs2 in query_set(5),
    ) {
        let mut fleet = Fleet::new(&qs);
        let mut restriped_cols = 0usize;
        for (round, chunk) in ups.chunks(8).enumerate() {
            let (head, tail) = chunk.split_at(chunk.len() / 2);
            for u in head {
                fleet.ingest(u);
            }
            let t = round as f64 + 0.5;
            let want = fleet.oracle.evaluate(t);
            for (s, server) in &mut fleet.rebalanced {
                prop_assert_eq!(&server.evaluate(t), &want, "rebalanced({}) t={}", *s, t);
            }
            if round % 2 == 0 {
                // Migrate with empty round feeds…
                for (_, server) in &mut fleet.rebalanced {
                    restriped_cols += server.force_restripe();
                }
                for u in tail {
                    fleet.ingest(u);
                }
            } else {
                // …and with re-reports already queued for the next round.
                for u in tail {
                    fleet.ingest(u);
                }
                for (_, server) in &mut fleet.rebalanced {
                    restriped_cols += server.force_restripe();
                }
            }
            let want = fleet.oracle.evaluate(t);
            for (s, server) in &mut fleet.rebalanced {
                prop_assert_eq!(&server.evaluate(t), &want, "rebalanced({}) same-t {}", *s, t);
            }
        }
        let _ = restriped_cols; // may legitimately be 0 on balanced inputs
        // Uncertain rounds rebuild their stripe-clipped covers after a
        // migration resized the stripes.
        let t = 8.25;
        let want = fleet.oracle.evaluate_uncertain(t, 125.0, delta_of);
        for (s, server) in &mut fleet.rebalanced {
            prop_assert_eq!(
                &server.evaluate_uncertain(t, 125.0, delta_of),
                &want, "rebalanced({}) uncertain", *s
            );
        }
        // Workload swap after migrations: indexes rebuild from scratch.
        fleet.oracle.replace_queries(qs2.iter().copied());
        for (_, s) in &mut fleet.rebalanced {
            s.replace_queries(qs2.iter().copied());
        }
        let t = 9.0;
        let want = fleet.oracle.evaluate(t);
        for (s, server) in &mut fleet.rebalanced {
            prop_assert_eq!(&server.evaluate(t), &want, "rebalanced({}) after swap", *s);
        }
    }
}

/// A population that drifts into a hotspot after the stripes are built
/// must organically trip the CoV trigger, migrate columns, reduce the
/// peak shard population — and never change a single result.
#[test]
fn sustained_hotspot_triggers_the_restriper() {
    // 4 queries ⇒ side_for(4) = 8 grid columns of 125 m.
    let qs: Vec<RangeQuery> = [
        Rect::from_coords(0.0, 0.0, 250.0, 1000.0),
        Rect::from_coords(250.0, 0.0, 625.0, 1000.0),
        Rect::from_coords(625.0, 0.0, 1000.0, 1000.0),
        Rect::from_coords(125.0, 250.0, 875.0, 750.0),
    ]
    .into_iter()
    .enumerate()
    .map(|(id, range)| RangeQuery {
        id: id as u32,
        range,
    })
    .collect();
    let mut oracle = CqServer::new(bounds(), NUM_NODES, 8);
    let mut server = CqServer::new(bounds(), NUM_NODES, 8)
        .with_engine(EvalEngine::Unified { shards: 4 })
        .with_rebalance(true);
    oracle.register_queries(qs.iter().copied());
    server.register_queries(qs.iter().copied());

    // Uniform spread first: the load-aware initial boundaries come out
    // near-uniform and the trigger stays quiet.
    for n in 0..NUM_NODES as u32 {
        let p = Point::new(U * (n % 16) as f64 + 31.25, U * (n / 2) as f64);
        oracle.ingest(n, 0.0, p, (0.0, 0.0));
        server.ingest(n, 0.0, p, (0.0, 0.0));
    }
    for round in 0..4 {
        let t = round as f64;
        assert_eq!(server.evaluate(t), oracle.evaluate(t), "warmup t={t}");
    }
    assert_eq!(
        server.restripe_stats().expect("unified").restripes,
        0,
        "a balanced world must not restripe"
    );

    // Flash crowd: every node re-reports inside the two westmost
    // columns, round after round.
    for round in 4..24 {
        let t = round as f64;
        for n in 0..NUM_NODES as u32 {
            let p = Point::new(U * (n % 4) as f64 + 15.625, U * (n % 16) as f64);
            oracle.ingest(n, t, p, (0.0, 0.0));
            server.ingest(n, t, p, (0.0, 0.0));
        }
        assert_eq!(server.evaluate(t), oracle.evaluate(t), "hotspot t={t}");
    }
    let rs = server.restripe_stats().expect("unified");
    assert!(
        rs.restripes >= 1,
        "sustained imbalance must trigger: {rs:?}"
    );
    assert!(rs.moved_cols > 0, "a rebalance moves columns: {rs:?}");
    let stats = server.shard_stats().expect("unified");
    let peak = stats.iter().map(|s| s.nodes).max().unwrap();
    assert!(
        peak <= NUM_NODES / 2,
        "migration must split the hot stripe: {stats:?}"
    );
    assert_eq!(
        stats.iter().map(|s| s.nodes).sum::<usize>(),
        NUM_NODES,
        "every node still owned exactly once"
    );
}

/// Accounting edges: nothing to migrate before the first round, at one
/// shard, or on the legacy oracle; stats start zeroed.
#[test]
fn restripe_accounting_edges() {
    let mut fresh = CqServer::new(bounds(), 8, 8).with_engine(EvalEngine::Unified { shards: 4 });
    assert_eq!(fresh.force_restripe(), 0, "unprimed engine has no columns");
    let rs = fresh.restripe_stats().expect("unified");
    assert_eq!(rs, RestripeStats::default());

    let mut single = CqServer::new(bounds(), 8, 8).with_rebalance(true);
    single.register_query(RangeQuery {
        id: 0,
        range: Rect::from_coords(0.0, 0.0, 1000.0, 1000.0),
    });
    single.ingest(0, 0.0, Point::new(10.0, 10.0), (0.0, 0.0));
    single.evaluate(0.0);
    assert_eq!(single.force_restripe(), 0, "one shard never migrates");
    assert_eq!(
        single.restripe_stats().expect("unified").imbalance,
        0.0,
        "one shard is never imbalanced"
    );

    #[cfg(feature = "legacy-oracle")]
    {
        let mut legacy = CqServer::new(bounds(), 8, 8).with_engine(EvalEngine::Legacy);
        assert_eq!(legacy.restripe_stats(), None);
        assert_eq!(legacy.force_restripe(), 0);
    }
}
