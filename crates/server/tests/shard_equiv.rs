//! Property-based equivalence suite for the unified engine across shard
//! counts: unified at shards ∈ {1, 2, 3, 7, 8} (plus a pool-free
//! sequential run and the `LIRA_TEST_SHARDS` CI count) ≡ the
//! dirty-tracking-off baseline ≡ legacy ≡ brute force, for `evaluate`,
//! `evaluate_uncertain`, and `nearest`.
//!
//! Coordinates reuse the lattice trick from `eval_equiv.rs` — every
//! generated coordinate is a multiple of 62.5 m (binary-exact) over a
//! 1 km² space — and the dedicated boundary test pins the query count so
//! the evaluation grid has exactly 8 columns, making lattice points land
//! *exactly* on stripe boundaries for every tested shard count. Rounds
//! are evaluated twice per step (advancing `t`, then the same `t` again
//! after more ingests) so the engine's work-skipping dirty rounds are
//! exercised as hard as its full sweeps and handoffs.

// The whole battery compares against the legacy oracle.
#![cfg(feature = "legacy-oracle")]

use lira_core::geometry::{Point, Rect};
use lira_server::prelude::*;
use proptest::prelude::*;

/// The coordinate lattice unit (m); binary-exact.
const U: f64 = 62.5;
const NUM_NODES: usize = 24;
/// Shard counts under test: degenerate (1), even splits (2, 8 — at 8 the
/// boundary test's grid gives every shard exactly one column), uneven
/// splits that leave stripes of different widths (3, 7).
const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 7, 8];

fn bounds() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

#[derive(Clone, Debug)]
struct Update {
    node: u32,
    t: f64,
    pos: Point,
    vel: (f64, f64),
}

fn updates(max: usize) -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (
            0u32..NUM_NODES as u32,
            0u32..5,
            -2i32..19,
            -2i32..19,
            -4i32..5,
            -2i32..3,
        )
            .prop_map(|(node, k, i, j, vi, vj)| Update {
                node,
                t: k as f64,
                pos: Point::new(i as f64 * U, j as f64 * U),
                // x-velocities reach ±25 m/s so nodes cross stripe
                // boundaries between rounds.
                vel: (vi as f64 * 6.25, vj as f64 * 6.25),
            }),
        1..max,
    )
}

fn query_set(max: usize) -> impl Strategy<Value = Vec<RangeQuery>> {
    prop::collection::vec(
        (-1i32..17, -1i32..17, 1i32..8, 1i32..8).prop_map(|(i, j, w, h)| {
            Rect::from_coords(
                i as f64 * U,
                j as f64 * U,
                (i + w) as f64 * U,
                (j + h) as f64 * U,
            )
        }),
        1..max,
    )
    .prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(id, range)| RangeQuery {
                id: id as u32,
                range,
            })
            .collect()
    })
}

/// `(model time, origin, velocity)` — the oracle's motion model.
type Model = (f64, Point, (f64, f64));

/// The brute-force oracle: last-writer-wins motion models with the node
/// store's exact staleness rule and the same prediction arithmetic,
/// evaluated by full scans.
#[derive(Clone)]
struct Oracle {
    models: Vec<Option<Model>>,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            models: vec![None; NUM_NODES],
        }
    }

    fn apply(&mut self, u: &Update) {
        let slot = &mut self.models[u.node as usize];
        if let Some((time, _, _)) = slot {
            if *time > u.t {
                return;
            }
        }
        *slot = Some((u.t, u.pos, u.vel));
    }

    fn predict(&self, node: usize, t: f64) -> Option<Point> {
        self.models[node].map(|(time, origin, vel)| {
            let dt = t - time;
            Point::new(origin.x + vel.0 * dt, origin.y + vel.1 * dt)
        })
    }

    fn evaluate(&self, queries: &[RangeQuery], t: f64) -> Vec<QueryResult> {
        queries
            .iter()
            .map(|q| QueryResult {
                query: q.id,
                nodes: (0..NUM_NODES)
                    .filter(|&n| self.predict(n, t).is_some_and(|p| q.range.contains(&p)))
                    .map(|n| n as u32)
                    .collect(),
            })
            .collect()
    }

    fn evaluate_uncertain(
        &self,
        queries: &[RangeQuery],
        t: f64,
        max_delta: f64,
        delta_of: impl Fn(u32, Point) -> f64,
    ) -> Vec<UncertainResult> {
        queries
            .iter()
            .map(|q| {
                let mut must = Vec::new();
                let mut maybe = Vec::new();
                for n in 0..NUM_NODES {
                    let Some(p) = self.predict(n, t) else {
                        continue;
                    };
                    let delta = delta_of(n as u32, p).clamp(0.0, max_delta);
                    if q.range.contains(&p) && q.range.interior_depth(&p) >= delta {
                        must.push(n as u32);
                    } else if q.range.distance_to_point(&p) <= delta {
                        maybe.push(n as u32);
                    }
                }
                UncertainResult {
                    query: q.id,
                    must,
                    maybe,
                }
            })
            .collect()
    }

    fn nearest(&self, center: Point, k: usize, t: f64) -> Vec<(u32, f64)> {
        let mut hits: Vec<(u32, f64)> = (0..NUM_NODES)
            .filter_map(|n| self.predict(n, t).map(|p| (n as u32, p.distance(&center))))
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

/// Every engine configuration under test, fed identically: the two
/// reference servers (the dirty-tracking-off baseline — the retired
/// inverted engine's every-node incremental round — and the legacy
/// oracle), one pooled unified server per count in `SHARD_COUNTS`, one
/// forced onto the calling thread (sequential ≡ parallel), and one with
/// the CI matrix's `LIRA_TEST_SHARDS` count.
struct Fleet {
    baseline: CqServer,
    legacy: CqServer,
    unified: Vec<(usize, CqServer)>,
}

impl Fleet {
    fn new(queries: &[RangeQuery]) -> Self {
        let b = bounds();
        // The CI matrix's LIRA_REBALANCE leg runs the whole battery with
        // the online re-striper enabled on every unified server.
        let rb = rebalance_from_env(false);
        let mut unified: Vec<(usize, CqServer)> = SHARD_COUNTS
            .iter()
            .map(|&s| {
                (
                    s,
                    CqServer::new(b, NUM_NODES, 8)
                        .with_engine(EvalEngine::Unified { shards: s })
                        .with_rebalance(rb),
                )
            })
            .collect();
        // Shards = 4 again, but with every phase on the calling thread:
        // must be bit-identical to the pooled run.
        unified.push((
            4,
            CqServer::new(b, NUM_NODES, 8)
                .with_engine(EvalEngine::Unified { shards: 4 })
                .with_rebalance(rb)
                .with_sequential_eval(true),
        ));
        // The CI matrix leg (LIRA_TEST_SHARDS ∈ {4, 8}) widens coverage.
        unified.push((
            0, // label: env-selected
            CqServer::new(b, NUM_NODES, 8).with_engine(EvalEngine::unified_from_env(4)),
        ));
        // Re-striper always on regardless of the environment (builder
        // order deliberately reversed vs the servers above: the flag must
        // survive `with_engine`'s state reset).
        unified.push((
            33, // label: shards = 3 with load-aware striping forced on
            CqServer::new(b, NUM_NODES, 8)
                .with_rebalance(true)
                .with_engine(EvalEngine::Unified { shards: 3 }),
        ));
        let mut fleet = Fleet {
            baseline: CqServer::new(b, NUM_NODES, 8).with_dirty_tracking(false),
            legacy: CqServer::new(b, NUM_NODES, 8).with_engine(EvalEngine::Legacy),
            unified,
        };
        fleet.baseline.register_queries(queries.iter().copied());
        fleet.legacy.register_queries(queries.iter().copied());
        for (_, s) in &mut fleet.unified {
            s.register_queries(queries.iter().copied());
        }
        fleet
    }

    fn ingest(&mut self, u: &Update) {
        self.baseline.ingest(u.node, u.t, u.pos, u.vel);
        self.legacy.ingest(u.node, u.t, u.pos, u.vel);
        for (_, s) in &mut self.unified {
            s.ingest(u.node, u.t, u.pos, u.vel);
        }
    }

    fn replace(&mut self, queries: &[RangeQuery]) {
        self.baseline.replace_queries(queries.iter().copied());
        self.legacy.replace_queries(queries.iter().copied());
        for (_, s) in &mut self.unified {
            s.replace_queries(queries.iter().copied());
        }
    }
}

/// The deterministic per-node Δ all engines and the oracle use in
/// uncertain evaluation (binary-exact multiples of U/4).
fn delta_of(n: u32, _p: Point) -> f64 {
    (n % 4) as f64 * 15.625
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn evaluate_equivalent_across_shard_counts(
        ups in updates(60),
        qs in query_set(8),
        qs2 in query_set(5),
    ) {
        let mut fleet = Fleet::new(&qs);
        let mut oracle = Oracle::new();
        for (round, chunk) in ups.chunks(8).enumerate() {
            let (head, tail) = chunk.split_at(chunk.len() / 2);
            for u in head {
                fleet.ingest(u);
                oracle.apply(u);
            }
            // Advancing-t round: full sweeps, stripe handoffs.
            let t = round as f64 + 0.5;
            let want = oracle.evaluate(&qs, t);
            prop_assert_eq!(&fleet.baseline.evaluate(t), &want, "baseline t={}", t);
            prop_assert_eq!(&fleet.legacy.evaluate(t), &want, "legacy t={}", t);
            for (s, server) in &mut fleet.unified {
                prop_assert_eq!(&server.evaluate(t), &want, "unified({}) t={}", *s, t);
            }
            // Same-t round after more ingests: the unified engine's
            // dirty path re-places only the re-reported nodes.
            for u in tail {
                fleet.ingest(u);
                oracle.apply(u);
            }
            let want = oracle.evaluate(&qs, t);
            prop_assert_eq!(&fleet.baseline.evaluate(t), &want, "baseline same-t {}", t);
            for (s, server) in &mut fleet.unified {
                prop_assert_eq!(&server.evaluate(t), &want, "unified({}) same-t {}", *s, t);
            }
        }
        // Workload swap: stripe indexes must invalidate and rebuild.
        fleet.replace(&qs2);
        let t = 9.0;
        let want = oracle.evaluate(&qs2, t);
        prop_assert_eq!(&fleet.baseline.evaluate(t), &want, "baseline after swap");
        for (s, server) in &mut fleet.unified {
            prop_assert_eq!(&server.evaluate(t), &want, "unified({}) after swap", *s);
        }
    }

    #[test]
    fn evaluate_uncertain_equivalent_across_shard_counts(
        ups in updates(50),
        qs in query_set(6),
        dmax_step in 1i32..4,
    ) {
        // Δ⊣ at binary-exact multiples of half a cell, so the expanded
        // covers also align with cell (and stripe) boundaries.
        let max_delta = dmax_step as f64 * 31.25;
        let mut fleet = Fleet::new(&qs);
        let mut oracle = Oracle::new();
        for (round, chunk) in ups.chunks(10).enumerate() {
            for u in chunk {
                fleet.ingest(u);
                oracle.apply(u);
            }
            let t = round as f64 + 0.25;
            let want = oracle.evaluate_uncertain(&qs, t, max_delta, delta_of);
            prop_assert_eq!(
                &fleet.baseline.evaluate_uncertain(t, max_delta, delta_of),
                &want, "baseline t={}", t
            );
            prop_assert_eq!(
                &fleet.legacy.evaluate_uncertain(t, max_delta, delta_of),
                &want, "legacy t={}", t
            );
            for (s, server) in &mut fleet.unified {
                prop_assert_eq!(
                    &server.evaluate_uncertain(t, max_delta, delta_of),
                    &want, "unified({}) t={}", *s, t
                );
            }
        }
    }

    #[test]
    fn nearest_equivalent_across_shard_counts(
        ups in updates(40),
        qs in query_set(3),
        ci in -1i32..18,
        cj in -1i32..18,
        k in 0usize..8,
    ) {
        let center = Point::new(ci as f64 * U, cj as f64 * U);
        let mut fleet = Fleet::new(&qs);
        let mut oracle = Oracle::new();
        for u in &ups {
            fleet.ingest(u);
            oracle.apply(u);
        }
        let t = 4.0;
        let want = oracle.nearest(center, k, t);
        prop_assert_eq!(&fleet.baseline.nearest(center, k, t), &want, "baseline");
        for (s, server) in &mut fleet.unified {
            prop_assert_eq!(&server.nearest(center, k, t), &want, "unified({})", *s);
        }
    }
}

/// Four queries make `side_for(4) = 8` grid columns of 125 m, so stripe
/// boundaries for shards ∈ {1, 2, 3, 7} all fall on multiples of 125 m
/// — and the lattice nodes below sit *exactly* on them. Crossing
/// traffic shuttles nodes across the boundaries round after round.
#[test]
fn stripe_boundary_alignment_is_exact() {
    let qs: Vec<RangeQuery> = [
        Rect::from_coords(0.0, 0.0, 250.0, 1000.0),
        Rect::from_coords(250.0, 0.0, 625.0, 1000.0), // edges on stripe bounds
        Rect::from_coords(625.0, 0.0, 1000.0, 1000.0),
        Rect::from_coords(125.0, 250.0, 875.0, 750.0), // spans every stripe
    ]
    .into_iter()
    .enumerate()
    .map(|(id, range)| RangeQuery {
        id: id as u32,
        range,
    })
    .collect();
    let mut fleet = Fleet::new(&qs);
    let mut oracle = Oracle::new();
    // Nodes pinned to stripe-boundary columns (x ∈ {125·k}) with
    // velocities that push them back and forth across the boundaries.
    for n in 0..NUM_NODES as u32 {
        let u = Update {
            node: n,
            t: 0.0,
            pos: Point::new(125.0 * (n % 9) as f64, 62.5 * (n % 16) as f64),
            vel: (if n % 2 == 0 { 125.0 } else { -125.0 }, 6.25),
        };
        fleet.ingest(&u);
        oracle.apply(&u);
    }
    for round in 0..8 {
        // t advances by exactly one cell width per round: every moving
        // node lands on the next boundary, many crossing stripes.
        let t = round as f64;
        let want = oracle.evaluate(&qs, t);
        assert_eq!(fleet.baseline.evaluate(t), want, "baseline t={t}");
        assert_eq!(fleet.legacy.evaluate(t), want, "legacy t={t}");
        for (s, server) in &mut fleet.unified {
            assert_eq!(server.evaluate(t), want, "unified({s}) t={t}");
        }
        let wantu = oracle.evaluate_uncertain(&qs, t, 125.0, delta_of);
        for (s, server) in &mut fleet.unified {
            assert_eq!(
                server.evaluate_uncertain(t, 125.0, delta_of),
                wantu,
                "unified({s}) uncertain t={t}"
            );
        }
    }
    // The crossing traffic must actually have exercised handoffs, and
    // ownership must still cover every node exactly once.
    for (s, server) in &fleet.unified {
        let stats = server.shard_stats().expect("unified engine");
        let owned: usize = stats.iter().map(|st| st.nodes).sum();
        assert_eq!(owned, NUM_NODES, "unified({s}): every node owned once");
        if *s > 1 {
            let handoffs: u64 = stats.iter().map(|st| st.handoffs).sum();
            assert!(handoffs > 0, "unified({s}): crossing traffic hands off");
        }
    }
}

/// `shard_stats` reports the stripe layout and node occupancy.
#[test]
fn shard_stats_reflect_layout_and_occupancy() {
    let qs: Vec<RangeQuery> = (0..4)
        .map(|id| RangeQuery {
            id,
            range: Rect::from_coords(0.0, 0.0, 1000.0, 1000.0),
        })
        .collect();
    let mut server =
        CqServer::new(bounds(), NUM_NODES, 8).with_engine(EvalEngine::Unified { shards: 3 });
    assert_eq!(server.shard_stats(), Some(Vec::new()), "no stripes yet");
    server.register_queries(qs);
    // All nodes in the westmost column.
    for n in 0..NUM_NODES as u32 {
        server.ingest(n, 0.0, Point::new(10.0, 10.0 + n as f64), (0.0, 0.0));
    }
    server.evaluate(0.0);
    let stats = server.shard_stats().unwrap();
    assert_eq!(stats.len(), 3);
    // side_for(4) = 8 columns split 2/3/3.
    assert_eq!(stats[0].columns, (0, 2));
    assert_eq!(stats[1].columns, (2, 5));
    assert_eq!(stats[2].columns, (5, 8));
    assert_eq!(stats[0].nodes, NUM_NODES, "west stripe owns everything");
    assert_eq!(stats[1].nodes + stats[2].nodes, 0);
    // The unified engine always has stripes — the default server reports
    // its single degenerate one; only the legacy oracle has none.
    let mut default_server = CqServer::new(bounds(), 4, 8);
    default_server.register_query(RangeQuery {
        id: 0,
        range: Rect::from_coords(0.0, 0.0, 1000.0, 1000.0),
    });
    default_server.evaluate(0.0);
    let stats = default_server.shard_stats().expect("unified default");
    assert_eq!(stats.len(), 1, "shards = 1 is one degenerate stripe");
    assert_eq!(stats[0].columns, (0, 4), "side_for(1) = 4 columns");
    assert_eq!(
        CqServer::new(bounds(), 4, 8)
            .with_engine(EvalEngine::Legacy)
            .shard_stats(),
        None,
        "the legacy oracle has no shards"
    );
}
