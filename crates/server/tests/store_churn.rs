//! Property-based churn suite for the SoA `NodeStore` under the unified
//! engine: random interleavings of first reports, re-reports (including
//! stale ones), *removals*, and re-registrations, with evaluate rounds
//! in between — results must stay bit-identical to a brute-force oracle
//! that models the store's exact staleness and removal semantics, and to
//! the legacy per-query path. Rounds reuse the same output buffers
//! throughout (the membership/result buffer-reuse contract): a node that
//! vanishes must vanish from the *reused* vectors too, not merely from
//! freshly-allocated ones.
//!
//! Coordinates use the binary-exact 62.5 m lattice from `eval_equiv.rs`
//! so removals and re-insertions land exactly on cell and stripe
//! boundaries.

// The battery compares against the legacy oracle.
#![cfg(feature = "legacy-oracle")]

use lira_core::geometry::{Point, Rect};
use lira_server::prelude::*;
use proptest::prelude::*;

/// The coordinate lattice unit (m); binary-exact.
const U: f64 = 62.5;
const NUM_NODES: usize = 16;

fn bounds() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

/// One step of the churn script.
#[derive(Clone, Debug)]
enum Op {
    /// Report (first or repeat; possibly stale) for `node` at time `t`.
    Report {
        node: u32,
        t: f64,
        pos: Point,
        vel: (f64, f64),
    },
    /// Remove `node` (no-op if it never reported).
    Remove { node: u32 },
    /// Evaluate everything at the *last* round time again (dirty round).
    EvalSame,
    /// Evaluate everything at an advanced time (sweep round).
    EvalAdvance,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    // Op selector 0..10 — 5 parts report, 2 remove, 1 same-t round,
    // 2 advancing rounds (the vendored proptest has no `prop_oneof`).
    prop::collection::vec(
        (
            0u32..10,
            0u32..NUM_NODES as u32,
            0u32..6,
            -2i32..19,
            -2i32..19,
            0u32..25,
        )
            .prop_map(|(sel, node, k, i, j, v)| match sel {
                0..=4 => Op::Report {
                    node,
                    t: k as f64,
                    pos: Point::new(i as f64 * U, j as f64 * U),
                    // v encodes (vx, vy) ∈ {-2..2}² in multiples of 6.25.
                    vel: (((v / 5) as f64 - 2.0) * 6.25, ((v % 5) as f64 - 2.0) * 6.25),
                },
                5 | 6 => Op::Remove { node },
                7 => Op::EvalSame,
                _ => Op::EvalAdvance,
            }),
        1..max,
    )
}

/// `(report time, origin, velocity)`.
type Model = (f64, Point, (f64, f64));

/// Brute-force oracle with the store's exact semantics: reject strictly
/// older reports (ties accepted), and removal *forgets history* — a
/// later report re-registers the node even with an older timestamp.
#[derive(Clone)]
struct Oracle {
    models: Vec<Option<Model>>,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            models: vec![None; NUM_NODES],
        }
    }

    fn report(&mut self, node: u32, t: f64, pos: Point, vel: (f64, f64)) {
        let slot = &mut self.models[node as usize];
        if let Some((time, _, _)) = slot {
            if *time > t {
                return;
            }
        }
        *slot = Some((t, pos, vel));
    }

    fn remove(&mut self, node: u32) {
        self.models[node as usize] = None;
    }

    fn predict(&self, node: usize, t: f64) -> Option<Point> {
        self.models[node].map(|(time, origin, vel)| {
            let dt = t - time;
            Point::new(origin.x + vel.0 * dt, origin.y + vel.1 * dt)
        })
    }

    fn evaluate(&self, queries: &[RangeQuery], t: f64) -> Vec<QueryResult> {
        queries
            .iter()
            .map(|q| QueryResult {
                query: q.id,
                nodes: (0..NUM_NODES)
                    .filter(|&n| self.predict(n, t).is_some_and(|p| q.range.contains(&p)))
                    .map(|n| n as u32)
                    .collect(),
            })
            .collect()
    }
}

fn query_set(max: usize) -> impl Strategy<Value = Vec<RangeQuery>> {
    prop::collection::vec(
        (-1i32..17, -1i32..17, 1i32..8, 1i32..8).prop_map(|(i, j, w, h)| {
            Rect::from_coords(
                i as f64 * U,
                j as f64 * U,
                (i + w) as f64 * U,
                (j + h) as f64 * U,
            )
        }),
        1..max,
    )
    .prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(id, range)| RangeQuery {
                id: id as u32,
                range,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn churn_with_removals_stays_bit_identical_to_the_oracle(
        script in ops(80),
        qs in query_set(7),
    ) {
        let b = bounds();
        // Unified at 1 and 3 shards plus the legacy path; output buffers
        // created once and reused across every round below.
        let mut servers: Vec<(String, CqServer)> = vec![
            ("unified(1)".into(), CqServer::new(b, NUM_NODES, 8)),
            (
                "unified(3)".into(),
                CqServer::new(b, NUM_NODES, 8).with_engine(EvalEngine::Unified { shards: 3 }),
            ),
            (
                "legacy".into(),
                CqServer::new(b, NUM_NODES, 8).with_engine(EvalEngine::Legacy),
            ),
        ];
        for (_, s) in &mut servers {
            s.register_queries(qs.iter().copied());
        }
        let mut oracle = Oracle::new();
        let mut bufs: Vec<Vec<QueryResult>> = vec![Vec::new(); servers.len()];
        let mut t = 0.5;
        let mut rounds = 0u32;
        for op in &script {
            match op {
                Op::Report { node, t, pos, vel } => {
                    for (_, s) in &mut servers {
                        s.ingest(*node, *t, *pos, *vel);
                    }
                    oracle.report(*node, *t, *pos, *vel);
                }
                Op::Remove { node } => {
                    let removed: Vec<bool> = servers
                        .iter_mut()
                        .map(|(_, s)| s.remove_node(*node))
                        .collect();
                    prop_assert!(
                        removed.iter().all(|&r| r == removed[0]),
                        "engines disagree on removal of {}", node
                    );
                    oracle.remove(*node);
                }
                Op::EvalSame | Op::EvalAdvance => {
                    if matches!(op, Op::EvalAdvance) {
                        t += 1.0;
                    }
                    rounds += 1;
                    let want = oracle.evaluate(&qs, t);
                    for ((label, s), buf) in servers.iter_mut().zip(&mut bufs) {
                        s.evaluate_into(t, buf);
                        prop_assert_eq!(&*buf, &want, "{} t={} round={}", label, t, rounds);
                    }
                }
            }
        }
        // Final settling round into the same reused buffers.
        t += 1.0;
        let want = oracle.evaluate(&qs, t);
        for ((label, s), buf) in servers.iter_mut().zip(&mut bufs) {
            s.evaluate_into(t, buf);
            prop_assert_eq!(&*buf, &want, "{} final", label);
        }
        // And the store agrees with the oracle on who exists.
        let alive = oracle.models.iter().filter(|m| m.is_some()).count();
        for (label, s) in &servers {
            prop_assert_eq!(s.store().reported_count(), alive, "{} reported_count", label);
        }
    }
}

/// Node churn interleaved with a correlated regional outage: while the
/// west half's base stations are dark (`[10, 20)`), every west-side
/// report is silently lost on the uplink, some of those same nodes are
/// removed server-side, and after the window they re-register through
/// the recovered channel. The unified engine (1 and 3 shards) and the
/// legacy path must agree bit for bit at every round — losses arriving
/// as *gaps* (a removal with no subsequent report) exercise a different
/// store path than the usual stale-rejection churn.
#[test]
fn churn_across_a_regional_outage_window_stays_engine_identical() {
    let west = Rect::from_coords(0.0, 0.0, 500.0, 1000.0);
    let profile = FaultProfile {
        outages: vec![Outage::regional(10.0, 20.0, west)],
        ..FaultProfile::none()
    };
    // Zero-draw profile: the outage decides by position and time alone,
    // so the whole test is deterministic for any seed.
    let mut ch: FaultyChannel<(u32, f64, Point, (f64, f64))> = FaultyChannel::new(profile, 3);

    let mut servers: Vec<(String, CqServer)> = vec![
        ("unified(1)".into(), CqServer::new(bounds(), NUM_NODES, 8)),
        (
            "unified(3)".into(),
            CqServer::new(bounds(), NUM_NODES, 8).with_engine(EvalEngine::Unified { shards: 3 }),
        ),
        (
            "legacy".into(),
            CqServer::new(bounds(), NUM_NODES, 8).with_engine(EvalEngine::Legacy),
        ),
    ];
    let qs = [
        RangeQuery {
            id: 0,
            range: Rect::from_coords(0.0, 0.0, 500.0, 1000.0),
        },
        RangeQuery {
            id: 1,
            range: Rect::from_coords(250.0, 0.0, 1000.0, 1000.0),
        },
    ];
    for (_, s) in &mut servers {
        s.register_queries(qs);
    }
    let mut bufs: Vec<Vec<QueryResult>> = vec![Vec::new(); servers.len()];

    // Node i lives at a fixed lattice position; the west half is
    // ids 0..8, the east half 8..16.
    let pos = |i: u32| {
        let col = if i < 8 { 1 + (i % 4) } else { 9 + (i % 4) };
        Point::new(col as f64 * U, (1 + i / 4 % 4) as f64 * U)
    };

    for step in 0..30u32 {
        let t = step as f64;
        // Every node re-reports each second from its position.
        for i in 0..NUM_NODES as u32 {
            ch.send_from(t, pos(i), (i, t, pos(i), (0.0, 0.0)));
        }
        // Mid-outage churn: remove a west node (whose replacement report
        // is being eaten by the outage) and an east node (whose report
        // still flows) each second of the window.
        if (12..16).contains(&step) {
            let west_node = step - 12; // 0..4
            let east_node = 8 + (step - 12);
            for (label, s) in &mut servers {
                assert!(s.remove_node(west_node), "{label} remove {west_node}");
                assert!(s.remove_node(east_node), "{label} remove {east_node}");
            }
        }
        for d in ch.poll(t) {
            let (node, rt, p, v) = d.payload;
            for (_, s) in &mut servers {
                s.ingest(node, rt, p, v);
            }
        }
        // Evaluate every tick; all three engines must agree exactly.
        for ((_, s), buf) in servers.iter_mut().zip(&mut bufs) {
            s.evaluate_into(t + 0.5, buf);
        }
        let (first, rest) = bufs.split_first().expect("three servers");
        for ((label, _), buf) in servers.iter().skip(1).zip(rest) {
            assert_eq!(buf, first, "{label} diverged at t = {t}");
        }
        // Spot-check the semantics at the window edges: while the outage
        // holds, removed west nodes stay gone (their re-reports are being
        // lost), removed east nodes reappear next tick.
        if step == 17 {
            let west_ids = &bufs[0][0].nodes;
            for removed in 0..4u32 {
                assert!(
                    !west_ids.contains(&removed),
                    "west node {removed} resurrected mid-outage: {west_ids:?}"
                );
            }
            let east_ids = &bufs[0][1].nodes;
            for removed in 8..12u32 {
                assert!(
                    east_ids.contains(&removed),
                    "east node {removed} should re-register through the live channel"
                );
            }
        }
    }
    // After the window every node is back.
    for ((label, s), buf) in servers.iter_mut().zip(&mut bufs) {
        s.evaluate_into(30.5, buf);
        let mut all: Vec<u32> = buf[0].nodes.iter().chain(&buf[1].nodes).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), NUM_NODES, "{label}: someone never recovered");
        assert_eq!(s.store().reported_count(), NUM_NODES, "{label}");
    }
    // The outage actually bit: 8 west nodes x 10 seconds of lost reports.
    assert_eq!(ch.stats().lost, 80);
    assert_eq!(ch.stats().rng_draws, 0, "zero-draw fault profile");
}

/// A remove → re-ingest → evaluate sequence within a single round must
/// re-register the node exactly once (the pending/dirty overlap path),
/// at every shard count, including with reused buffers across the
/// transition.
#[test]
fn remove_then_reingest_within_one_round() {
    let qs = [RangeQuery {
        id: 0,
        range: Rect::from_coords(0.0, 0.0, 1000.0, 1000.0),
    }];
    for shards in [1usize, 2, 4] {
        let mut s = CqServer::new(bounds(), 4, 8).with_engine(EvalEngine::Unified { shards });
        s.register_queries(qs);
        let mut buf = Vec::new();
        s.ingest(0, 0.0, Point::new(100.0, 100.0), (0.0, 0.0));
        s.ingest(1, 0.0, Point::new(900.0, 100.0), (0.0, 0.0));
        s.evaluate_into(0.5, &mut buf);
        assert_eq!(buf[0].nodes, vec![0, 1], "shards={shards}");
        // Same-t: remove node 0, re-ingest it elsewhere, remove node 1.
        assert!(s.remove_node(0));
        s.ingest(0, 0.25, Point::new(500.0, 500.0), (0.0, 0.0));
        assert!(s.remove_node(1));
        s.evaluate_into(0.5, &mut buf);
        assert_eq!(buf[0].nodes, vec![0], "shards={shards} after churn");
        // Double-remove is a no-op and nothing reappears.
        assert!(!s.remove_node(1));
        s.evaluate_into(0.5, &mut buf);
        assert_eq!(buf[0].nodes, vec![0], "shards={shards} idempotent");
        assert_eq!(s.store().reported_count(), 1);
    }
}
