//! Closed-loop simulation: THROTLOOP driving the throttle fraction from
//! live input-queue observations (Section 3.4), end to end.
//!
//! Unlike [`run_scenario`](crate::runner::run_scenario), which evaluates
//! policies at a *fixed* `z`, this runner gives the shedding server a
//! bounded input queue and a finite service rate. Every control window the
//! controller observes `(λ, μ)`, recomputes `z`, and LIRA re-plans; the
//! reference server remains infinitely provisioned (it defines correctness,
//! not feasibility).

use lira_core::plan::SheddingPlan;
use lira_core::policy::RoundFeedback;
use lira_core::shedder::LiraShedder;
use lira_core::stats_grid::StatsGrid;
use lira_core::throt_loop::ThrotLoop;
use lira_mobility::motion::{DeadReckoner, MotionReport};
use lira_server::channel::FaultyChannel;
use lira_server::queue::UpdateQueue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lira_server::cq_engine::{rebalance_from_env, EvalEngine};

use crate::metrics::{FaultReport, MetricsAccumulator, MetricsReport};
use crate::pipeline::SimSetup;
use crate::runner::Policy;
use crate::scenario::Scenario;
use crate::telemetry::AdaptiveTelemetry;

/// Server capacity model for the closed loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Updates/second the shedding server can process.
    pub service_rate: f64,
    /// Input queue capacity `B`.
    pub queue_capacity: usize,
    /// Seconds between THROTLOOP observations (and re-plans).
    pub control_period_s: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            service_rate: 200.0,
            queue_capacity: 500,
            control_period_s: 20.0,
        }
    }
}

/// One control window's observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Simulation time at the end of the window.
    pub time: f64,
    /// Observed arrival rate λ (updates/s).
    pub arrival_rate: f64,
    /// Throttle fraction in force *after* the window's adaptation.
    pub throttle: f64,
    /// Queue length at the window end.
    pub queue_len: usize,
    /// Updates dropped (tail-drop) during the window.
    pub dropped: u64,
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Per-window timeline.
    pub windows: Vec<WindowStats>,
    /// Final throttle fraction.
    pub final_throttle: f64,
    /// Fraction of all arrivals dropped over the whole run.
    pub drop_fraction: f64,
    /// Accuracy vs the (infinitely provisioned) reference server.
    pub metrics: MetricsReport,
    /// Uplink delivery accounting (zeros on the perfect channel).
    pub faults: FaultReport,
    /// Controller/queue telemetry snapshot (per-window λ, μ, ρ, z,
    /// clamp/hold classification, queue depth and service latency);
    /// schema in docs/TELEMETRY.md.
    pub telemetry: lira_core::telemetry::TelemetrySnapshot,
}

/// Runs the closed loop for `sc.duration_s` seconds with the default
/// [`EvalEngine`].
pub fn run_adaptive(sc: &Scenario, cfg: &AdaptiveConfig) -> AdaptiveReport {
    run_adaptive_with_engine(sc, cfg, EvalEngine::default())
}

/// Runs the closed loop with an explicit evaluation engine for both the
/// reference and the shedding server. Engines are result-equivalent, so
/// the report is bit-identical either way (asserted by
/// `tests/pipeline.rs`).
pub fn run_adaptive_with_engine(
    sc: &Scenario,
    cfg: &AdaptiveConfig,
    engine: EvalEngine,
) -> AdaptiveReport {
    run_adaptive_opts(sc, cfg, engine, rebalance_from_env(false))
}

/// [`run_adaptive_with_engine`] with the unified engine's load-aware
/// striping and online re-striper switchable explicitly (`rebalance` —
/// bit-identical either way, see `restripe_equiv.rs`). The plain
/// variants default it from the `LIRA_REBALANCE` environment variable.
pub fn run_adaptive_opts(
    sc: &Scenario,
    cfg: &AdaptiveConfig,
    engine: EvalEngine,
    rebalance: bool,
) -> AdaptiveReport {
    // The closed loop always uses the analytic f(Δ): the controller is
    // being tested against the model the paper derives, not a calibrated
    // refinement of it.
    let mut setup = SimSetup::build(sc, false);
    let bounds = setup.bounds;
    let queries = setup.queries.clone();

    let mut reference = setup.new_server_opts(sc, engine, false, rebalance);
    let mut shed = setup.new_server_opts(sc, engine, false, rebalance);
    let mut ref_reckoners = vec![DeadReckoner::new(); sc.num_cars];
    let mut shed_reckoners = vec![DeadReckoner::new(); sc.num_cars];

    let mut shedder = LiraShedder::new(setup.config.clone(), cfg.queue_capacity)
        .expect("validated config")
        .with_model(setup.model.clone());
    let sim = &mut setup.sim;
    let phases = &mut setup.phases;
    let delta_caps = sc.fleet_delta_caps();
    let mut grid = StatsGrid::new(sc.alpha, bounds).expect("valid grid");
    let mut queue: UpdateQueue<MotionReport> = UpdateQueue::new(cfg.queue_capacity);
    let mut plan = SheddingPlan::uniform(bounds, sc.delta_min);
    let mut accumulator = MetricsAccumulator::new(queries.len());
    // Evaluation-round buffers, reused across rounds.
    let mut ref_results = Vec::new();
    let mut shed_results = Vec::new();
    // The uplink sits between the shedding reckoners and the input queue;
    // the reference server keeps its perfect feed (it defines the right
    // answer, so channel faults must not corrupt the yardstick). Seeded
    // with the single-lane channel rule (`seed + 2000`).
    let mut channel: Option<FaultyChannel<MotionReport>> = sc
        .faults
        .clone()
        .map(|profile| FaultyChannel::new(profile, sc.seed.wrapping_add(2000)));

    let tel = AdaptiveTelemetry::new(true);
    let total_ticks = (sc.duration_s / sc.dt).round() as usize;
    let control_every = (cfg.control_period_s / sc.dt).round().max(1.0) as usize;
    let eval_every = (sc.eval_period_s / sc.dt).round().max(1.0) as usize;
    let service_per_tick = (cfg.service_rate * sc.dt).round() as usize;

    let mut windows = Vec::new();
    let mut dropped_before = 0u64;
    for tick in 1..=total_ticks {
        phases.apply_due(sim);
        sim.step(sc.dt);
        let t = sim.time();
        for (i, car) in sim.cars().iter().enumerate() {
            let (pos, vel) = (car.position(), car.velocity());
            if let Some(rep) = ref_reckoners[i].observe(i as u32, t, pos, vel, sc.delta_min) {
                reference.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
            }
            let delta = plan.throttler_at(&pos);
            let delta = match &delta_caps {
                Some(caps) => delta.min(caps[i]),
                None => delta,
            };
            if let Some(rep) = shed_reckoners[i].observe(i as u32, t, pos, vel, delta) {
                match &mut channel {
                    None => {
                        queue.offer_at(t, rep);
                    }
                    Some(ch) => ch.send_from(t, pos, rep),
                }
            }
        }
        if let Some(ch) = &mut channel {
            for d in ch.poll(t) {
                // The report's own model time is the send time, so stale
                // arrivals are rejected downstream by the node store.
                // The queue timestamp is the *delivery* time: service
                // latency measures queueing, not the wireless hop.
                queue.offer_at(t, d.payload);
            }
        }
        // The server drains at its fixed capacity.
        for (arrived_at, rep) in queue.service_at(service_per_tick) {
            tel.on_serviced(t - arrived_at);
            shed.ingest(
                rep.node,
                rep.model.time,
                rep.model.origin,
                rep.model.velocity,
            );
        }

        if tick % control_every == 0 {
            let obs = queue.window_observation(cfg.control_period_s, cfg.service_rate);
            grid.begin_snapshot();
            for car in sim.cars() {
                grid.observe_node(&car.position(), car.speed(), 1.0);
            }
            for q in &queries {
                grid.observe_query(&q.range);
            }
            grid.commit_snapshot();
            let adaptation = shedder.adapt(&grid, obs).expect("adaptation succeeds");
            plan = adaptation.plan;
            let dropped_in_window = queue.dropped() - dropped_before;
            tel.on_window(
                t,
                queue.len(),
                dropped_in_window,
                obs.arrival_rate,
                obs.service_rate,
                shedder.controller(),
            );
            windows.push(WindowStats {
                time: t,
                arrival_rate: obs.arrival_rate,
                throttle: adaptation.throttle,
                queue_len: queue.len(),
                dropped: dropped_in_window,
            });
            dropped_before = queue.dropped();
        }

        if tick % eval_every == 0 {
            reference.evaluate_into(t, &mut ref_results);
            shed.evaluate_into(t, &mut shed_results);
            accumulator.record_round(
                &ref_results,
                &shed_results,
                |n| reference.predict(n, t),
                |n| shed.predict(n, t),
            );
        }
    }

    let faults = match &channel {
        Some(ch) => {
            tel.on_channel(&ch.stats());
            FaultReport::from_channel(ch.stats(), ch.pending())
        }
        None => FaultReport::default(),
    };
    // Per-shard accounting for the capacity-limited server (the reference
    // is infinitely provisioned, so only the shed side is interesting).
    if let Some(stats) = shed.shard_stats() {
        tel.on_shards(&stats);
    }
    if let Some(rs) = shed.restripe_stats() {
        tel.on_restripe(&rs);
    }
    AdaptiveReport {
        windows,
        final_throttle: shedder.throttle(),
        drop_fraction: queue.drop_fraction(),
        metrics: accumulator.report(),
        faults,
        telemetry: tel.snapshot(),
    }
}

/// Runs the closed loop with an arbitrary roster [`Policy`] in place of
/// the built-in LIRA shedder: THROTLOOP still drives `z` from the same
/// queue observations, but the plan comes from the policy's
/// [`adapt`](lira_core::policy::SheddingPolicy::adapt), server-actuated
/// policies (Random Drop) shed at the input queue via
/// [`admission`](lira_core::policy::SheddingPolicy::admission) (drawn
/// from the lane RNG rule, `seed + 1000`), and feedback-aware policies
/// receive [`RoundFeedback`] after every evaluation round.
///
/// This is a separate entry point rather than a generalization of
/// [`run_adaptive`]: the historical runner's outputs are pinned by
/// regression goldens and stay byte-for-byte untouched.
pub fn run_adaptive_policy(sc: &Scenario, cfg: &AdaptiveConfig, policy: Policy) -> AdaptiveReport {
    let engine = EvalEngine::default();
    let rebalance = rebalance_from_env(false);
    let mut setup = SimSetup::build(sc, false);
    let bounds = setup.bounds;
    let queries = setup.queries.clone();

    let mut reference = setup.new_server_opts(sc, engine, false, rebalance);
    let mut shed = setup.new_server_opts(sc, engine, false, rebalance);
    let mut ref_reckoners = vec![DeadReckoner::new(); sc.num_cars];
    let mut shed_reckoners = vec![DeadReckoner::new(); sc.num_cars];

    let mut shedding = policy.build(sc, &setup.config, &setup.model);
    let mut controller = ThrotLoop::new(cfg.queue_capacity).expect("valid queue capacity");
    let mut drop_rng = SmallRng::seed_from_u64(sc.seed.wrapping_add(1000));
    let sim = &mut setup.sim;
    let phases = &mut setup.phases;
    let delta_caps = sc.fleet_delta_caps();
    let mut grid = StatsGrid::new(sc.alpha, bounds).expect("valid grid");
    // The queue payload carries the sender's plan-region index so
    // per-region feedback accounting survives the uplink.
    let mut queue: UpdateQueue<(MotionReport, u32)> = UpdateQueue::new(cfg.queue_capacity);
    let mut plan = SheddingPlan::uniform(bounds, sc.delta_min);
    let mut accumulator = MetricsAccumulator::new(queries.len());
    let mut ref_results = Vec::new();
    let mut shed_results = Vec::new();
    let mut channel: Option<FaultyChannel<(MotionReport, u32)>> = sc
        .faults
        .clone()
        .map(|profile| FaultyChannel::new(profile, sc.seed.wrapping_add(2000)));

    let tel = AdaptiveTelemetry::new(true);
    let total_ticks = (sc.duration_s / sc.dt).round() as usize;
    let control_every = (cfg.control_period_s / sc.dt).round().max(1.0) as usize;
    let eval_every = (sc.eval_period_s / sc.dt).round().max(1.0) as usize;
    let service_per_tick = (cfg.service_rate * sc.dt).round() as usize;

    // Per-plan-region epoch counters (cumulative within a plan epoch,
    // reset at every adaptation) plus the accumulator totals at the
    // previous round, mirroring the fixed-`z` pipeline's feedback path.
    let mut region_admitted: Vec<u64> = vec![0; plan.len()];
    let mut region_shed: Vec<u64> = vec![0; plan.len()];
    let mut prev_totals = (0.0f64, 0.0f64);
    let mut admission = shedding.admission(controller.throttle());

    let bump = |counts: &mut Vec<u64>, region: u32| {
        if let Some(slot) = counts.get_mut(region as usize) {
            *slot += 1;
        }
    };

    let mut windows = Vec::new();
    let mut dropped_before = 0u64;
    for tick in 1..=total_ticks {
        phases.apply_due(sim);
        sim.step(sc.dt);
        let t = sim.time();
        for (i, car) in sim.cars().iter().enumerate() {
            let (pos, vel) = (car.position(), car.velocity());
            if let Some(rep) = ref_reckoners[i].observe(i as u32, t, pos, vel, sc.delta_min) {
                reference.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
            }
            let (region, delta) = plan.region_at(&pos);
            let region = region.map_or(u32::MAX, |r| r as u32);
            let delta = match &delta_caps {
                Some(caps) => delta.min(caps[i]),
                None => delta,
            };
            if let Some(rep) = shed_reckoners[i].observe(i as u32, t, pos, vel, delta) {
                match &mut channel {
                    None => {
                        // Server-actuated shedding happens at the input
                        // queue, before the update is enqueued.
                        if admission >= 1.0 || drop_rng.gen_bool(admission) {
                            bump(&mut region_admitted, region);
                            queue.offer_at(t, (rep, region));
                        } else {
                            bump(&mut region_shed, region);
                        }
                    }
                    Some(ch) => ch.send_from(t, pos, (rep, region)),
                }
            }
        }
        if let Some(ch) = &mut channel {
            for d in ch.poll(t) {
                let (rep, region) = d.payload;
                if admission >= 1.0 || drop_rng.gen_bool(admission) {
                    bump(&mut region_admitted, region);
                    queue.offer_at(t, (rep, region));
                } else {
                    bump(&mut region_shed, region);
                }
            }
        }
        for (arrived_at, (rep, _region)) in queue.service_at(service_per_tick) {
            tel.on_serviced(t - arrived_at);
            shed.ingest(
                rep.node,
                rep.model.time,
                rep.model.origin,
                rep.model.velocity,
            );
        }

        if tick % control_every == 0 {
            let obs = queue.window_observation(cfg.control_period_s, cfg.service_rate);
            let z = controller.observe(obs);
            grid.begin_snapshot();
            for car in sim.cars() {
                grid.observe_node(&car.position(), car.speed(), 1.0);
            }
            for q in &queries {
                grid.observe_query(&q.range);
            }
            grid.commit_snapshot();
            plan = shedding.adapt(&grid, z).expect("adaptation succeeds");
            admission = shedding.admission(z);
            region_admitted.clear();
            region_admitted.resize(plan.len(), 0);
            region_shed.clear();
            region_shed.resize(plan.len(), 0);
            let dropped_in_window = queue.dropped() - dropped_before;
            tel.on_window(
                t,
                queue.len(),
                dropped_in_window,
                obs.arrival_rate,
                obs.service_rate,
                &controller,
            );
            windows.push(WindowStats {
                time: t,
                arrival_rate: obs.arrival_rate,
                throttle: z,
                queue_len: queue.len(),
                dropped: dropped_in_window,
            });
            dropped_before = queue.dropped();
        }

        if tick % eval_every == 0 {
            reference.evaluate_into(t, &mut ref_results);
            shed.evaluate_into(t, &mut shed_results);
            accumulator.record_round(
                &ref_results,
                &shed_results,
                |n| reference.predict(n, t),
                |n| shed.predict(n, t),
            );
            let (c_tot, p_tot) = accumulator.totals();
            let round_queries = ref_results.len().max(1) as f64;
            shedding.observe_round(&RoundFeedback {
                position_error: (p_tot - prev_totals.1) / round_queries,
                containment_error: (c_tot - prev_totals.0) / round_queries,
                region_admitted: &region_admitted,
                region_shed: &region_shed,
                regions: plan.regions(),
            });
            prev_totals = (c_tot, p_tot);
        }
    }

    let faults = match &channel {
        Some(ch) => {
            tel.on_channel(&ch.stats());
            FaultReport::from_channel(ch.stats(), ch.pending())
        }
        None => FaultReport::default(),
    };
    if let Some(stats) = shed.shard_stats() {
        tel.on_shards(&stats);
    }
    if let Some(rs) = shed.restripe_stats() {
        tel.on_restripe(&rs);
    }
    AdaptiveReport {
        windows,
        final_throttle: controller.throttle(),
        drop_fraction: queue.drop_fraction(),
        metrics: accumulator.report(),
        faults,
        telemetry: tel.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        let mut sc = Scenario::small(29);
        sc.num_cars = 300;
        sc.duration_s = 200.0;
        sc
    }

    #[test]
    fn ample_capacity_keeps_full_budget() {
        let sc = scenario();
        let cfg = AdaptiveConfig {
            service_rate: 10_000.0,
            queue_capacity: 10_000,
            control_period_s: 20.0,
        };
        let report = run_adaptive(&sc, &cfg);
        assert!(
            report.final_throttle > 0.95,
            "z = {}",
            report.final_throttle
        );
        assert_eq!(report.drop_fraction, 0.0);
        // Nothing shed: near-perfect accuracy.
        assert!(report.metrics.mean_containment < 0.01);
    }

    #[test]
    fn overload_drives_z_down_and_stops_drops() {
        let sc = scenario();
        // Unshed arrival rate for 300 cars is roughly 40–80 upd/s here;
        // capacity 25/s forces z well below 1.
        let cfg = AdaptiveConfig {
            service_rate: 25.0,
            queue_capacity: 200,
            control_period_s: 20.0,
        };
        let report = run_adaptive(&sc, &cfg);
        assert!(report.final_throttle < 0.8, "z = {}", report.final_throttle);
        assert!(!report.windows.is_empty());
        // Drops concentrate early; the last windows should be (nearly)
        // drop-free once the controller converges.
        let late_drops: u64 = report.windows.iter().rev().take(2).map(|w| w.dropped).sum();
        let early_drops: u64 = report.windows.iter().take(2).map(|w| w.dropped).sum();
        assert!(
            late_drops <= early_drops,
            "late {late_drops} vs early {early_drops}"
        );
        // The final arrival rate respects the capacity within the M/M/1
        // utilization target.
        let last = report.windows.last().unwrap();
        assert!(
            last.arrival_rate <= cfg.service_rate * 1.15,
            "λ = {} vs μ = {}",
            last.arrival_rate,
            cfg.service_rate
        );
    }

    #[test]
    fn policy_runner_drives_any_roster_policy() {
        let mut sc = scenario();
        sc.duration_s = 120.0;
        let cfg = AdaptiveConfig {
            service_rate: 40.0,
            queue_capacity: 200,
            control_period_s: 20.0,
        };
        for policy in [
            Policy::UtilityGreedy,
            Policy::UtilityModel,
            Policy::RandomDrop,
        ] {
            let report = run_adaptive_policy(&sc, &cfg, policy);
            assert!(!report.windows.is_empty(), "{policy:?}");
            assert!(
                report.final_throttle > 0.0 && report.final_throttle <= 1.0,
                "{policy:?}: z = {}",
                report.final_throttle
            );
            assert!(report.metrics.mean_containment.is_finite(), "{policy:?}");
        }
        // Determinism: the policy runner is a pure function of its inputs.
        let a = run_adaptive_policy(&sc, &cfg, Policy::UtilityGreedy);
        let b = run_adaptive_policy(&sc, &cfg, Policy::UtilityGreedy);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.final_throttle, b.final_throttle);
    }

    #[test]
    fn timeline_is_recorded() {
        let sc = scenario();
        let report = run_adaptive(&sc, &AdaptiveConfig::default());
        assert_eq!(report.windows.len(), (sc.duration_s / 20.0) as usize);
        for w in &report.windows {
            assert!(w.throttle > 0.0 && w.throttle <= 1.0);
            assert!(w.time > 0.0);
        }
    }
}
