//! # lira-sim
//!
//! End-to-end evaluation harness for the LIRA reproduction: scenarios
//! (presets matching Table 2 of the paper), the multi-policy simulation
//! runner (one traffic feed, one reference server, one shedding server per
//! policy), and the paper's accuracy metrics (`E^C_rr`, `E^P_rr`,
//! `D^C_ev`, `C^C_ov`).
//!
//! ```no_run
//! use lira_sim::prelude::*;
//!
//! let scenario = Scenario::small(42);
//! let report = run_scenario(&scenario, &[Policy::Lira, Policy::RandomDrop]);
//! let lira = report.outcome(Policy::Lira).unwrap();
//! println!("LIRA containment error: {:.4}", lira.metrics.mean_containment);
//! ```

pub mod adaptive;
pub mod metrics;
pub mod pipeline;
pub mod runner;
pub mod scenario;
pub mod telemetry;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::adaptive::{
        run_adaptive, run_adaptive_opts, run_adaptive_policy, run_adaptive_with_engine,
        AdaptiveConfig, AdaptiveReport, WindowStats,
    };
    pub use crate::metrics::{
        evaluation_errors, FaultReport, MetricsAccumulator, MetricsReport, QueryErrors,
    };
    pub use crate::pipeline::{
        CarState, Parallelism, ReferenceTimeline, SimPipeline, SimSetup, TrafficTrace,
    };
    pub use crate::runner::{run_scenario, Policy, PolicyOutcome, RunReport};
    pub use crate::scenario::{DemandPhase, NamedScenario, PhaseSchedule, Scenario, SpeedClass};
    pub use crate::telemetry::{AdaptiveTelemetry, LaneTelemetry, PipelineTelemetry};
    pub use lira_core::telemetry::TelemetrySnapshot;
    pub use lira_server::cq_engine::EvalEngine;
}
