//! The paper's evaluation metrics (Section 4.1.1).
//!
//! All accuracy metrics compare a *shedding* server against a *reference*
//! server that runs `Δ_i = Δ⊢` everywhere: `R*(q)` and `p*(o)` are the
//! reference server's result set and predicted positions, exactly as the
//! paper defines them (not physical ground truth).

use lira_core::geometry::Point;
use lira_server::channel::ChannelStats;
use lira_server::query::QueryResult;

/// Errors of one query at one evaluation instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryErrors {
    /// Containment error `(|R*\R| + |R\R*|)/|R*|`. When `R*` is empty the
    /// denominator is taken as 1 (the error then counts the extras).
    pub containment: f64,
    /// Mean position error over the nodes in the shed result `R(q)`
    /// (0 when `R(q)` is empty).
    pub position: f64,
}

/// Computes per-query errors for one evaluation round.
///
/// `reference` and `shed` must be index-aligned (same query in the same
/// slot). `ref_pos`/`shed_pos` give each server's predicted position for a
/// node at the evaluation time.
pub fn evaluation_errors(
    reference: &[QueryResult],
    shed: &[QueryResult],
    mut ref_pos: impl FnMut(u32) -> Option<Point>,
    mut shed_pos: impl FnMut(u32) -> Option<Point>,
) -> Vec<QueryErrors> {
    assert_eq!(
        reference.len(),
        shed.len(),
        "result sets must cover the same queries"
    );
    reference
        .iter()
        .zip(shed)
        .map(|(r, s)| {
            debug_assert_eq!(r.query, s.query);
            let missing = r.missing_from(s);
            let extra = s.missing_from(r);
            let denom = r.nodes.len().max(1) as f64;
            let containment = (missing + extra) as f64 / denom;

            let mut pos_sum = 0.0;
            let mut pos_count = 0usize;
            for &node in &s.nodes {
                if let (Some(p), Some(p_star)) = (shed_pos(node), ref_pos(node)) {
                    pos_sum += p.distance(&p_star);
                    pos_count += 1;
                }
            }
            let position = if pos_count > 0 {
                pos_sum / pos_count as f64
            } else {
                0.0
            };
            QueryErrors {
                containment,
                position,
            }
        })
        .collect()
}

/// Accumulates per-query errors across evaluation rounds and produces the
/// paper's summary metrics.
#[derive(Debug, Clone)]
pub struct MetricsAccumulator {
    /// Per query: running sums of containment and position error.
    containment_sums: Vec<f64>,
    position_sums: Vec<f64>,
    rounds: usize,
}

impl MetricsAccumulator {
    /// Creates an accumulator for `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        MetricsAccumulator {
            containment_sums: vec![0.0; num_queries],
            position_sums: vec![0.0; num_queries],
            rounds: 0,
        }
    }

    /// Number of queries tracked.
    pub fn num_queries(&self) -> usize {
        self.containment_sums.len()
    }

    /// Number of evaluation rounds recorded.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Running totals `(Σ containment, Σ position)` over all queries and
    /// rounds recorded so far. Diffing totals around a
    /// [`record_round`](Self::record_round) call yields that round's
    /// error mass — the realized-loss feedback signal for
    /// feedback-aware shedding policies.
    pub fn totals(&self) -> (f64, f64) {
        (
            self.containment_sums.iter().sum(),
            self.position_sums.iter().sum(),
        )
    }

    /// Records one evaluation round straight from the two result sets,
    /// accumulating in place — no per-round `Vec<QueryErrors>` and no
    /// per-query allocations, with arithmetic identical (same operations,
    /// same order, bit-identical sums) to
    /// [`evaluation_errors`] followed by [`record`](Self::record). This is
    /// the steady-state entry point for simulation lanes.
    pub fn record_round(
        &mut self,
        reference: &[QueryResult],
        shed: &[QueryResult],
        mut ref_pos: impl FnMut(u32) -> Option<Point>,
        mut shed_pos: impl FnMut(u32) -> Option<Point>,
    ) {
        assert_eq!(
            reference.len(),
            shed.len(),
            "result sets must cover the same queries"
        );
        assert_eq!(reference.len(), self.containment_sums.len());
        for (i, (r, s)) in reference.iter().zip(shed).enumerate() {
            debug_assert_eq!(r.query, s.query);
            let missing = r.missing_from(s);
            let extra = s.missing_from(r);
            let denom = r.nodes.len().max(1) as f64;
            let containment = (missing + extra) as f64 / denom;

            let mut pos_sum = 0.0;
            let mut pos_count = 0usize;
            for &node in &s.nodes {
                if let (Some(p), Some(p_star)) = (shed_pos(node), ref_pos(node)) {
                    pos_sum += p.distance(&p_star);
                    pos_count += 1;
                }
            }
            let position = if pos_count > 0 {
                pos_sum / pos_count as f64
            } else {
                0.0
            };
            self.containment_sums[i] += containment;
            self.position_sums[i] += position;
        }
        self.rounds += 1;
    }

    /// Records one evaluation round's per-query errors.
    pub fn record(&mut self, errors: &[QueryErrors]) {
        assert_eq!(errors.len(), self.containment_sums.len());
        for (i, e) in errors.iter().enumerate() {
            self.containment_sums[i] += e.containment;
            self.position_sums[i] += e.position;
        }
        self.rounds += 1;
    }

    /// Produces the summary metrics (zeros when nothing was recorded).
    pub fn report(&self) -> MetricsReport {
        let q = self.containment_sums.len();
        if self.rounds == 0 || q == 0 {
            return MetricsReport::default();
        }
        let per_query_containment: Vec<f64> = self
            .containment_sums
            .iter()
            .map(|s| s / self.rounds as f64)
            .collect();
        let per_query_position: Vec<f64> = self
            .position_sums
            .iter()
            .map(|s| s / self.rounds as f64)
            .collect();
        let mean_c = per_query_containment.iter().sum::<f64>() / q as f64;
        let mean_p = per_query_position.iter().sum::<f64>() / q as f64;
        let var_c = per_query_containment
            .iter()
            .map(|e| (e - mean_c) * (e - mean_c))
            .sum::<f64>()
            / q as f64;
        let dev_c = var_c.sqrt();
        MetricsReport {
            mean_containment: mean_c,
            mean_position: mean_p,
            stddev_containment: dev_c,
            cov_containment: if mean_c > 0.0 { dev_c / mean_c } else { 0.0 },
        }
    }
}

/// Summary accuracy metrics, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsReport {
    /// Mean containment error `E^C_rr`.
    pub mean_containment: f64,
    /// Mean position error `E^P_rr` (meters).
    pub mean_position: f64,
    /// Standard deviation of containment error `D^C_ev` (fairness metric).
    pub stddev_containment: f64,
    /// Coefficient of variance of containment error `C^C_ov = D^C_ev/E^C_rr`.
    pub cov_containment: f64,
}

/// Uplink delivery accounting for one policy lane (all zeros on the
/// perfect-channel path, i.e. when the scenario has no
/// [`FaultProfile`](lira_server::channel::FaultProfile)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultReport {
    /// Position updates handed to the channel.
    pub sent: u64,
    /// Wireless transmissions (originals + retries + duplicate copies) —
    /// the airtime cost under faults.
    pub transmissions: u64,
    /// Retransmission attempts.
    pub retries: u64,
    /// Updates whose primary copy arrived at the server.
    pub delivered: u64,
    /// Duplicate copies delivered on top of `delivered`.
    pub duplicates: u64,
    /// Updates lost after exhausting the retry budget.
    pub lost: u64,
    /// Updates still in flight (or awaiting a retry) at the end of the
    /// run — neither delivered nor lost.
    pub pending: u64,
    /// Mean delivery latency of the arrived updates, seconds: how stale a
    /// position report is by the time the server applies it.
    pub mean_staleness_s: f64,
    /// RNG draws consumed by the channel's fault models — zero on the
    /// perfect-channel path, so telemetry can prove the fault layer is
    /// free when disabled.
    pub rng_draws: u64,
}

impl FaultReport {
    /// Snapshot of a channel's accounting at the end of a lane.
    pub fn from_channel(stats: ChannelStats, pending: u64) -> Self {
        FaultReport {
            sent: stats.sent,
            transmissions: stats.transmissions,
            retries: stats.retries,
            delivered: stats.delivered,
            duplicates: stats.duplicates,
            lost: stats.lost,
            pending,
            mean_staleness_s: stats.mean_delay_s(),
            rng_draws: stats.rng_draws,
        }
    }

    /// Fraction of sent updates that never arrived.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }

    /// Accounting invariant: sent = delivered + lost + pending.
    pub fn accounted(&self) -> bool {
        self.sent == self.delivered + self.lost + self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(query: u32, nodes: Vec<u32>) -> QueryResult {
        QueryResult { query, nodes }
    }

    #[test]
    fn containment_error_counts_missing_and_extra() {
        let reference = vec![result(0, vec![1, 2, 3, 4])];
        let shed = vec![result(0, vec![2, 3, 9])];
        let errs = evaluation_errors(&reference, &shed, |_| None, |_| None);
        // Missing {1, 4}, extra {9}: (2 + 1)/4.
        assert!((errs[0].containment - 0.75).abs() < 1e-12);
        // No positions available: position error is 0.
        assert_eq!(errs[0].position, 0.0);
    }

    #[test]
    fn perfect_result_has_zero_error() {
        let reference = vec![result(0, vec![1, 2])];
        let shed = vec![result(0, vec![1, 2])];
        let pos = |n: u32| Some(Point::new(n as f64, 0.0));
        let errs = evaluation_errors(&reference, &shed, pos, pos);
        assert_eq!(errs[0].containment, 0.0);
        assert_eq!(errs[0].position, 0.0);
    }

    #[test]
    fn empty_reference_counts_extras() {
        let reference = vec![result(0, vec![])];
        let shed = vec![result(0, vec![5, 6])];
        let errs = evaluation_errors(&reference, &shed, |_| None, |_| None);
        assert_eq!(errs[0].containment, 2.0);
        // Both empty: zero error.
        let errs = evaluation_errors(
            &[result(0, vec![])],
            &[result(0, vec![])],
            |_| None,
            |_| None,
        );
        assert_eq!(errs[0].containment, 0.0);
    }

    #[test]
    fn position_error_averages_over_result_nodes() {
        let reference = vec![result(0, vec![1, 2])];
        let shed = vec![result(0, vec![1, 2])];
        let ref_pos = |n: u32| Some(Point::new(n as f64 * 10.0, 0.0));
        let shed_pos = |n: u32| {
            Some(Point::new(
                n as f64 * 10.0 + if n == 1 { 3.0 } else { 7.0 },
                0.0,
            ))
        };
        let errs = evaluation_errors(&reference, &shed, ref_pos, shed_pos);
        assert!((errs[0].position - 5.0).abs() < 1e-12);
    }

    #[test]
    fn position_error_skips_nodes_without_reference_positions() {
        let reference = vec![result(0, vec![1])];
        let shed = vec![result(0, vec![1, 2])];
        // Node 2 never reported to the reference: only node 1 contributes.
        let ref_pos = |n: u32| (n == 1).then(|| Point::new(0.0, 0.0));
        let shed_pos = |n: u32| Some(Point::new(n as f64, 0.0));
        let errs = evaluation_errors(&reference, &shed, ref_pos, shed_pos);
        assert!((errs[0].position - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_means_over_rounds_and_queries() {
        let mut acc = MetricsAccumulator::new(2);
        acc.record(&[
            QueryErrors {
                containment: 0.2,
                position: 10.0,
            },
            QueryErrors {
                containment: 0.4,
                position: 20.0,
            },
        ]);
        acc.record(&[
            QueryErrors {
                containment: 0.4,
                position: 30.0,
            },
            QueryErrors {
                containment: 0.6,
                position: 40.0,
            },
        ]);
        let r = acc.report();
        // Per-query means: (0.3, 0.5) -> mean 0.4; positions (20, 30) -> 25.
        assert!((r.mean_containment - 0.4).abs() < 1e-12);
        assert!((r.mean_position - 25.0).abs() < 1e-12);
        // Std dev across queries: |0.3-0.4| = 0.1.
        assert!((r.stddev_containment - 0.1).abs() < 1e-12);
        assert!((r.cov_containment - 0.25).abs() < 1e-12);
        assert_eq!(acc.rounds(), 2);
    }

    #[test]
    fn record_round_is_bit_identical_to_errors_plus_record() {
        let reference = vec![
            result(0, vec![1, 2, 3, 4]),
            result(1, vec![]),
            result(2, vec![7, 9]),
        ];
        let shed = vec![
            result(0, vec![2, 3, 9]),
            result(1, vec![5]),
            result(2, vec![7, 9]),
        ];
        let ref_pos = |n: u32| (n != 5).then(|| Point::new(n as f64 * 10.0, 3.0));
        let shed_pos = |n: u32| Some(Point::new(n as f64 * 10.0 + 1.5, 2.0));
        let mut via_errors = MetricsAccumulator::new(3);
        for _ in 0..3 {
            via_errors.record(&evaluation_errors(&reference, &shed, ref_pos, shed_pos));
        }
        let mut via_round = MetricsAccumulator::new(3);
        for _ in 0..3 {
            via_round.record_round(&reference, &shed, ref_pos, shed_pos);
        }
        assert_eq!(via_errors.rounds(), via_round.rounds());
        // Bit-identical, not just approximately equal.
        assert_eq!(via_errors.report(), via_round.report());
        assert_eq!(via_errors.containment_sums, via_round.containment_sums);
        assert_eq!(via_errors.position_sums, via_round.position_sums);
    }

    #[test]
    fn empty_accumulator_reports_zeros() {
        let acc = MetricsAccumulator::new(0);
        let r = acc.report();
        assert_eq!(r, MetricsReport::default());
        let acc = MetricsAccumulator::new(3);
        assert_eq!(acc.report(), MetricsReport::default());
    }

    #[test]
    fn fault_report_mirrors_channel_stats() {
        let stats = ChannelStats {
            sent: 10,
            transmissions: 14,
            retries: 3,
            delivered: 7,
            duplicates: 1,
            lost: 2,
            delay_sum_s: 3.5,
            rng_draws: 14,
        };
        let r = FaultReport::from_channel(stats, 1);
        assert!(r.accounted());
        assert!((r.loss_fraction() - 0.2).abs() < 1e-12);
        assert!((r.mean_staleness_s - 0.5).abs() < 1e-12);
        assert_eq!(r.rng_draws, 14);
        let zero = FaultReport::default();
        assert!(zero.accounted());
        assert_eq!(zero.loss_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same queries")]
    fn mismatched_result_sets_panic() {
        let reference = vec![result(0, vec![])];
        evaluation_errors(&reference, &[], |_| None, |_| None);
    }
}
