//! The composable simulation pipeline behind
//! [`run_scenario`](crate::runner::run_scenario).
//!
//! A scenario run decomposes into stages with explicit data products:
//!
//! 1. [`SimSetup`] — road network, traffic demand, a warmed-up (and
//!    optionally model-calibrating) [`TrafficSimulator`], and the query
//!    workload. Shared by the fixed-`z` runner and the closed-loop
//!    [`run_adaptive`](crate::adaptive::run_adaptive).
//! 2. [`TrafficTrace`] — the measured window's car states, recorded once.
//!    The trace is the *only* coupling between the traffic model and the
//!    servers, so every downstream lane sees byte-identical inputs.
//! 3. [`ReferenceTimeline`] — the `Δ⊢` reference server replayed over the
//!    trace: its update count, and per evaluation round its query results
//!    and per-node predicted positions (the paper's `R*(q)` and `p*(o)`).
//! 4. N independent policy lanes — each owns its CQ server, dead
//!    reckoners, statistics grid, policy (a
//!    [`SheddingPolicy`] trait object), and metrics accumulator. Lanes
//!    share the trace and reference read-only, so with two or more
//!    policies they run on scoped threads ([`std::thread::scope`], no
//!    extra dependencies).
//!
//! Lane results are deterministic regardless of execution mode: each lane
//! derives its RNG from the scenario seed and its policy index
//! (`seed + 1000 + index`, the same rule the sequential runner always
//! used), and touches no shared mutable state — so a parallel run is
//! bit-identical to [`Parallelism::Sequential`], which exists for tests
//! and debugging.

use std::time::Instant;

use lira_core::config::LiraConfig;
use lira_core::geometry::{Point, Rect};
use lira_core::plan::SheddingPlan;
use lira_core::policy::{RoundFeedback, SheddingPolicy};
use lira_core::reduction::ReductionModel;
use lira_core::stats_grid::StatsGrid;
use lira_mobility::generator::{generate_network, NetworkConfig};
use lira_mobility::motion::DeadReckoner;
use lira_mobility::simulator::{TrafficConfig, TrafficSimulator};
use lira_server::channel::FaultyChannel;
use lira_server::cq_engine::{rebalance_from_env, CqServer, EvalEngine};
use lira_server::query::{QueryResult, RangeQuery};
use lira_workload::scenario::PhaseSchedule;
use lira_workload::{generate_queries, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{FaultReport, MetricsAccumulator};
use crate::runner::{Policy, PolicyOutcome, RunReport};
use crate::scenario::Scenario;
use crate::telemetry::{LaneTelemetry, PipelineTelemetry};

/// How policy lanes are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One scoped thread per lane when two or more policies are evaluated.
    #[default]
    Auto,
    /// Lanes run one after another on the calling thread. Produces
    /// bit-identical results to [`Parallelism::Auto`]; useful for tests
    /// and single-threaded profiling.
    Sequential,
}

/// Stage 1: everything the measured window depends on — validated config,
/// reduction model (analytic or trace-calibrated), warmed-up traffic, and
/// the query workload.
pub struct SimSetup {
    /// Validated LIRA configuration derived from the scenario.
    pub config: LiraConfig,
    /// The monitored space.
    pub bounds: Rect,
    /// The update-reduction model `f(Δ)`.
    pub model: ReductionModel,
    /// The traffic simulator, already past `warmup_s`.
    pub sim: TrafficSimulator,
    /// The scenario's demand-phase schedule, advanced through warmup and
    /// consumed by [`record_trace`](Self::record_trace) (or by a caller
    /// driving `sim` itself — apply before every step).
    pub phases: PhaseSchedule,
    /// The registered continual queries.
    pub queries: Vec<RangeQuery>,
}

impl SimSetup {
    /// Builds the substrate for a scenario. When `calibrate` is set the
    /// analytic `f(Δ)` is replaced by one measured from a cloned traffic
    /// probe (the clone leaves the measured run untouched).
    pub fn build(sc: &Scenario, calibrate: bool) -> Self {
        let config = sc.lira_config();
        config
            .validate()
            .expect("scenario produces a valid LiraConfig");
        sc.validate()
            .expect("scenario extensions (phases/fleet/dead zones) validate");
        let bounds = sc.bounds();
        let model = ReductionModel::analytic(sc.delta_min, sc.delta_max, config.kappa());

        let network = generate_network(&NetworkConfig {
            bounds,
            spacing: sc.road_spacing,
            arterial_period: sc.arterial_period,
            expressway_period: sc.expressway_period,
            jitter_frac: 0.2,
            dead_zones: sc.dead_zones.clone(),
            seed: sc.seed,
        });
        let demand = sc.base_demand();
        let mut sim = TrafficSimulator::new(
            network,
            &demand,
            TrafficConfig {
                num_cars: sc.num_cars,
                seed: sc.seed,
            },
        );
        if let Some(scales) = sc.fleet_speed_scales() {
            // Applied after spawning, so a heterogeneous fleet's RNG
            // streams stay aligned with the homogeneous baseline.
            sim.scale_speeds(|id| scales[id as usize]);
        }
        let mut phases = PhaseSchedule::new(sc);
        for _ in 0..(sc.warmup_s / sc.dt).round() as usize {
            phases.apply_due(&mut sim);
            sim.step(sc.dt);
        }

        let model = if calibrate {
            let mut probe = sim.clone();
            let trace = lira_mobility::trace::Trace::record(
                &mut probe,
                180.0_f64.min(sc.duration_s),
                sc.dt,
            );
            trace
                .calibrate_reduction(sc.delta_min, sc.delta_max, config.kappa(), 10)
                .expect("calibration trace produces updates")
        } else {
            model
        };

        let positions: Vec<_> = sim.cars().iter().map(|c| c.position()).collect();
        let queries = generate_queries(
            &bounds,
            &positions,
            &WorkloadConfig::from_ratio(
                sc.query_distribution,
                sc.num_cars,
                sc.query_ratio,
                sc.query_side,
                sc.seed,
            ),
        );

        SimSetup {
            config,
            bounds,
            model,
            sim,
            phases,
            queries,
        }
    }

    /// Advances the setup's simulator through the measured window,
    /// recording the traffic trace every downstream stage replays.
    /// Demand-phase switches scheduled inside the window fire here.
    pub fn record_trace(&mut self, sc: &Scenario) -> TrafficTrace {
        let total_ticks = (sc.duration_s / sc.dt).round() as usize;
        let phases = &mut self.phases;
        TrafficTrace::record_with(&mut self.sim, total_ticks, sc.dt, |sim| {
            phases.apply_due(sim)
        })
    }

    /// A CQ server over this setup's space with the workload registered,
    /// using the default [`EvalEngine`].
    pub fn new_server(&self, sc: &Scenario) -> CqServer {
        self.new_server_with(sc, EvalEngine::default())
    }

    /// A CQ server with the workload registered and an explicit engine.
    pub fn new_server_with(&self, sc: &Scenario, engine: EvalEngine) -> CqServer {
        self.new_server_opts(sc, engine, false, false)
    }

    /// [`new_server_with`](Self::new_server_with), optionally forcing
    /// every evaluation phase onto the calling thread and/or enabling
    /// the online re-striper. [`Parallelism::Sequential`] passes
    /// `sequential_eval = true` so a "sequential" pipeline run spawns no
    /// threads anywhere — not even inside the unified engine (which is
    /// bit-identical either way); `rebalance` switches the unified
    /// engine to load-aware boundaries plus online re-striping (also
    /// bit-identical — see `restripe_equiv.rs`).
    pub fn new_server_opts(
        &self,
        sc: &Scenario,
        engine: EvalEngine,
        sequential_eval: bool,
        rebalance: bool,
    ) -> CqServer {
        let mut s = CqServer::new(self.bounds, sc.num_cars, 64)
            .with_engine(engine)
            .with_sequential_eval(sequential_eval)
            .with_rebalance(rebalance);
        s.register_queries(self.queries.iter().copied());
        s
    }
}

/// One car's kinematic state at one trace tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarState {
    /// Position (m).
    pub position: Point,
    /// Velocity vector (m/s).
    pub velocity: (f64, f64),
}

impl CarState {
    /// Scalar speed (m/s).
    pub fn speed(&self) -> f64 {
        (self.velocity.0 * self.velocity.0 + self.velocity.1 * self.velocity.1).sqrt()
    }
}

/// Stage 2: the recorded traffic of the measured window, tick-major.
/// Tick 0 is the post-warmup snapshot (where the initial adaptation runs);
/// ticks `1..=ticks()` follow each simulation step.
pub struct TrafficTrace {
    num_cars: usize,
    times: Vec<f64>,
    states: Vec<CarState>,
}

impl TrafficTrace {
    /// Advances `sim` by `total_ticks` steps of `dt`, recording every car's
    /// state at every tick (including the starting state).
    pub fn record(sim: &mut TrafficSimulator, total_ticks: usize, dt: f64) -> Self {
        Self::record_with(sim, total_ticks, dt, |_| {})
    }

    /// [`record`](Self::record) with a hook invoked immediately before
    /// every step — the pipeline threads demand-phase switches through it
    /// (see [`PhaseSchedule::apply_due`]).
    pub fn record_with<F: FnMut(&mut TrafficSimulator)>(
        sim: &mut TrafficSimulator,
        total_ticks: usize,
        dt: f64,
        mut before_step: F,
    ) -> Self {
        let num_cars = sim.cars().len();
        let mut times = Vec::with_capacity(total_ticks + 1);
        let mut states = Vec::with_capacity((total_ticks + 1) * num_cars);
        let snapshot =
            |sim: &TrafficSimulator, times: &mut Vec<f64>, states: &mut Vec<CarState>| {
                times.push(sim.time());
                states.extend(sim.cars().iter().map(|c| CarState {
                    position: c.position(),
                    velocity: c.velocity(),
                }));
            };
        snapshot(sim, &mut times, &mut states);
        for _ in 0..total_ticks {
            before_step(sim);
            sim.step(dt);
            snapshot(sim, &mut times, &mut states);
        }
        TrafficTrace {
            num_cars,
            times,
            states,
        }
    }

    /// Number of recorded steps (excluding the starting snapshot).
    pub fn ticks(&self) -> usize {
        self.times.len() - 1
    }

    /// Number of cars per tick.
    pub fn num_cars(&self) -> usize {
        self.num_cars
    }

    /// Simulation time at `tick`.
    pub fn time(&self, tick: usize) -> f64 {
        self.times[tick]
    }

    /// All car states at `tick`.
    pub fn cars(&self, tick: usize) -> &[CarState] {
        &self.states[tick * self.num_cars..(tick + 1) * self.num_cars]
    }
}

/// One evaluation round of the reference server.
pub struct EvalFrame {
    /// The trace tick the round ran at.
    pub tick: usize,
    /// Simulation time of the round.
    pub time: f64,
    /// The reference result sets `R*(q)`, index-aligned with the queries.
    pub results: Vec<QueryResult>,
    /// The reference predicted position `p*(o)` per node id.
    pub predictions: Vec<Option<Point>>,
}

/// Stage 3: the `Δ⊢` reference server replayed over the trace — the
/// paper's definition of the correct answer, computed once and shared
/// read-only by every policy lane.
pub struct ReferenceTimeline {
    /// Updates the reference server received (the unshed volume).
    pub reference_updates: u64,
    /// One frame per evaluation round, in tick order.
    pub frames: Vec<EvalFrame>,
}

impl ReferenceTimeline {
    /// Replays the reference server (threshold `Δ⊢` everywhere) over the
    /// trace, evaluating every `sc.eval_period_s`.
    pub fn compute(trace: &TrafficTrace, setup: &SimSetup, sc: &Scenario) -> Self {
        Self::compute_with(trace, setup, sc, EvalEngine::default())
    }

    /// [`compute`](Self::compute) with an explicit evaluation engine.
    pub fn compute_with(
        trace: &TrafficTrace,
        setup: &SimSetup,
        sc: &Scenario,
        engine: EvalEngine,
    ) -> Self {
        Self::compute_opts(trace, setup, sc, engine, false, false)
    }

    /// [`compute_with`](Self::compute_with), optionally forcing the
    /// reference server's evaluation onto the calling thread and/or
    /// enabling the online re-striper (see
    /// [`SimSetup::new_server_opts`]).
    pub fn compute_opts(
        trace: &TrafficTrace,
        setup: &SimSetup,
        sc: &Scenario,
        engine: EvalEngine,
        sequential_eval: bool,
        rebalance: bool,
    ) -> Self {
        let mut server = setup.new_server_opts(sc, engine, sequential_eval, rebalance);
        let mut reckoners = vec![DeadReckoner::new(); trace.num_cars()];
        let eval_every = (sc.eval_period_s / sc.dt).round().max(1.0) as usize;
        let mut reference_updates = 0u64;
        let mut frames = Vec::new();

        for tick in 1..=trace.ticks() {
            let t = trace.time(tick);
            for (i, car) in trace.cars(tick).iter().enumerate() {
                if let Some(rep) =
                    reckoners[i].observe(i as u32, t, car.position, car.velocity, sc.delta_min)
                {
                    reference_updates += 1;
                    server.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
                }
            }
            if tick % eval_every == 0 {
                let results = server.evaluate(t);
                let predictions = (0..trace.num_cars() as u32)
                    .map(|n| server.predict(n, t))
                    .collect();
                frames.push(EvalFrame {
                    tick,
                    time: t,
                    results,
                    predictions,
                });
            }
        }
        ReferenceTimeline {
            reference_updates,
            frames,
        }
    }
}

/// What one position update carries across the uplink: node id, motion
/// model origin, velocity, and the shedding-region index the sender was
/// in (`u32::MAX` when the plan resolved no region) — the last field
/// exists so per-region admission accounting survives the channel's
/// delay. Send time rides on the channel envelope.
type UplinkPayload = (u32, Point, (f64, f64), u32);

/// Region sentinel for "the plan had no region covering this position".
const NO_REGION: u32 = u32::MAX;

/// Stage 4: one policy's isolated simulation state. Owns everything it
/// mutates, so lanes can run on separate threads.
struct PolicyLane {
    policy: Policy,
    shedding: Box<dyn SheddingPolicy>,
    server: CqServer,
    reckoners: Vec<DeadReckoner>,
    grid: StatsGrid,
    plan: SheddingPlan,
    drop_rng: SmallRng,
    /// The uplink between this lane's dead reckoners and its server;
    /// `None` is the historical perfect channel.
    channel: Option<FaultyChannel<UplinkPayload>>,
    updates_sent: u64,
    updates_processed: u64,
    adapt_micros: Vec<u64>,
    accumulator: MetricsAccumulator,
    /// The lane's evaluation-round result buffer, reused across rounds
    /// (the unified engine writes into it without allocating).
    shed_results: Vec<QueryResult>,
    tel: LaneTelemetry,
    /// Updates admitted per plan region in the current plan epoch. Kept
    /// as plain vectors — maintained identically whether telemetry is
    /// enabled or not, so the lane does the same work either way.
    region_admitted: Vec<u64>,
    /// Updates shed (server-actuated admission drop) per plan region in
    /// the current plan epoch.
    region_shed: Vec<u64>,
    /// Accumulator totals at the previous evaluation round, so each
    /// round's error mass can be diffed out as policy feedback.
    prev_totals: (f64, f64),
    /// Per-node `Δ` caps for heterogeneous fleets (`None` = uncapped,
    /// the historical fast path).
    delta_caps: Option<Vec<f64>>,
    /// Where this epoch's server-actuated drops landed, on a fixed
    /// [`SKEW_GRID`]×[`SKEW_GRID`] partition of the monitored space. A
    /// *fixed* grid, not the plan's regions: Random Drop's plan is a
    /// single region, which would make its skew vacuously zero, and a
    /// plan-relative measure could not be compared across policies.
    skew_cells: Vec<u64>,
    /// The monitored space (for mapping drop positions to skew cells).
    bounds: Rect,
    /// Shed-volume-weighted sum of per-epoch shed-skew CoVs (numerator
    /// of [`PolicyOutcome::shed_skew`]).
    shed_skew_sum: f64,
    /// Total server-actuated drops across all epochs (its denominator).
    shed_skew_weight: f64,
    /// Sum and count of per-epoch plan-threshold CoVs (for
    /// [`PolicyOutcome::plan_skew`]).
    plan_skew_sum: f64,
    plan_epochs: u64,
}

/// Side of the fixed spatial grid used for shed-skew accounting (see
/// [`PolicyLane::skew_cells`]).
const SKEW_GRID: usize = 4;

/// Coefficient of variation (stddev/mean) of `values`; `0` when there are
/// fewer than two values or the mean is zero.
fn coefficient_of_variation(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let (mut n, mut sum) = (0u64, 0.0f64);
    for v in values.clone() {
        n += 1;
        sum += v;
    }
    if n < 2 || sum == 0.0 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    var.sqrt() / mean
}

impl PolicyLane {
    /// Builds the lane for `policy` at position `index` in the run. The
    /// lane RNG seed is `scenario seed + 1000 + index`, matching the
    /// historical sequential runner so results stay reproducible; the
    /// channel RNG extends the same rule at offset 2000, keeping fault
    /// draws out of the admission stream (a faulty run perturbs traffic,
    /// never the drop decisions of an identically-seeded perfect run).
    #[allow(clippy::too_many_arguments)]
    fn new(
        policy: Policy,
        index: usize,
        setup: &SimSetup,
        sc: &Scenario,
        telemetry: bool,
        engine: EvalEngine,
        sequential_eval: bool,
        rebalance: bool,
    ) -> Self {
        PolicyLane {
            policy,
            shedding: policy.build(sc, &setup.config, &setup.model),
            server: setup.new_server_opts(sc, engine, sequential_eval, rebalance),
            reckoners: vec![DeadReckoner::new(); sc.num_cars],
            grid: StatsGrid::new(sc.alpha, setup.bounds).expect("valid grid"),
            plan: SheddingPlan::uniform(setup.bounds, sc.delta_min),
            drop_rng: SmallRng::seed_from_u64(sc.seed.wrapping_add(1000 + index as u64)),
            channel: sc.faults.clone().map(|profile| {
                FaultyChannel::new(profile, sc.seed.wrapping_add(2000 + index as u64))
            }),
            updates_sent: 0,
            updates_processed: 0,
            adapt_micros: Vec::new(),
            accumulator: MetricsAccumulator::new(setup.queries.len()),
            shed_results: Vec::new(),
            tel: LaneTelemetry::new(telemetry),
            region_admitted: Vec::new(),
            region_shed: Vec::new(),
            prev_totals: (0.0, 0.0),
            delta_caps: sc.fleet_delta_caps(),
            skew_cells: vec![0; SKEW_GRID * SKEW_GRID],
            bounds: setup.bounds,
            shed_skew_sum: 0.0,
            shed_skew_weight: 0.0,
            plan_skew_sum: 0.0,
            plan_epochs: 0,
        }
    }

    /// Records one server-actuated drop at the sender's reported origin
    /// for shed-skew accounting.
    fn bump_skew_cell(&mut self, p: &Point) {
        let k = SKEW_GRID as f64;
        let fx = ((p.x - self.bounds.min.x) / self.bounds.width() * k) as usize;
        let fy = ((p.y - self.bounds.min.y) / self.bounds.height() * k) as usize;
        let cell = fy.min(SKEW_GRID - 1) * SKEW_GRID + fx.min(SKEW_GRID - 1);
        self.skew_cells[cell] += 1;
    }

    /// Closes the current plan epoch's shed-skew accounting: the CoV of
    /// server-actuated drops across the fixed spatial grid, weighted by
    /// the epoch's drop volume (epochs that shed nothing contribute
    /// nothing), then resets the epoch counters.
    fn flush_shed_skew(&mut self) {
        let total: u64 = self.skew_cells.iter().sum();
        if total == 0 {
            return;
        }
        let cov = coefficient_of_variation(self.skew_cells.iter().map(|&c| c as f64));
        self.shed_skew_sum += cov * total as f64;
        self.shed_skew_weight += total as f64;
        self.skew_cells.iter_mut().for_each(|c| *c = 0);
    }

    /// One adaptation round: snapshot statistics from the tick's car
    /// states and the workload, then let the policy re-plan. Only the
    /// policy's own computation is timed (the paper's server-side cost).
    fn adapt(&mut self, cars: &[CarState], queries: &[RangeQuery], z: f64) {
        // Close out the outgoing plan's per-region epoch before replacing
        // it (the region indices are only meaningful against one plan).
        self.tel
            .flush_regions(&self.region_admitted, &self.region_shed);
        self.flush_shed_skew();
        self.grid.begin_snapshot();
        for car in cars {
            self.grid.observe_node(&car.position, car.speed(), 1.0);
        }
        for q in queries {
            self.grid.observe_query(&q.range);
        }
        self.grid.commit_snapshot();
        let started = Instant::now();
        self.plan = self
            .shedding
            .adapt(&self.grid, z)
            .expect("adaptation succeeds on a committed snapshot");
        let micros = started.elapsed().as_micros() as u64;
        self.adapt_micros.push(micros);
        self.plan_skew_sum +=
            coefficient_of_variation(self.plan.regions().iter().map(|r| r.throttler));
        self.plan_epochs += 1;
        self.tel
            .on_adapt(micros, z, self.shedding.last_cost(), &self.plan);
        self.tel.on_utility(self.shedding.utility_scores());
        self.region_admitted.clear();
        self.region_admitted.resize(self.plan.len(), 0);
        self.region_shed.clear();
        self.region_shed.resize(self.plan.len(), 0);
    }

    /// Bumps a per-region epoch counter, ignoring the [`NO_REGION`]
    /// sentinel and indices from a superseded plan.
    fn bump_region(counts: &mut [u64], region: u32) {
        if let Some(slot) = counts.get_mut(region as usize) {
            *slot += 1;
        }
    }

    /// Replays the lane over the whole trace and produces its outcome.
    fn run(
        mut self,
        trace: &TrafficTrace,
        reference: &ReferenceTimeline,
        queries: &[RangeQuery],
        sc: &Scenario,
    ) -> PolicyOutcome {
        let total_ticks = trace.ticks();
        let adapt_every = (sc.adapt_period_s / sc.dt).round().max(1.0) as usize;
        let admission = self.shedding.admission(sc.throttle);

        self.adapt(trace.cars(0), queries, sc.throttle);
        let mut next_frame = 0usize;

        for tick in 1..=total_ticks {
            let t = trace.time(tick);
            for (i, car) in trace.cars(tick).iter().enumerate() {
                // One lookup resolves both the throttler and the region
                // index (identical cost to the old `throttler_at` path).
                let (region, delta) = self.plan.region_at(&car.position);
                let region = region.map_or(NO_REGION, |r| r as u32);
                // Heterogeneous fleets cap the plan's threshold per node
                // (a pedestrian's consumers reject wide Δ).
                let delta = match &self.delta_caps {
                    Some(caps) => delta.min(caps[i]),
                    None => delta,
                };
                if let Some(rep) =
                    self.reckoners[i].observe(i as u32, t, car.position, car.velocity, delta)
                {
                    self.updates_sent += 1;
                    self.tel.on_sent();
                    match &mut self.channel {
                        // Perfect channel: the historical inline path.
                        // Server-actuated policies (Random Drop) admit
                        // only a fraction of the arrivals; the wireless
                        // cost is already paid at this point.
                        None => {
                            if admission >= 1.0 || self.drop_rng.gen_bool(admission) {
                                self.updates_processed += 1;
                                self.tel.on_admitted();
                                Self::bump_region(&mut self.region_admitted, region);
                                self.server.ingest(
                                    rep.node,
                                    t,
                                    rep.model.origin,
                                    rep.model.velocity,
                                );
                            } else {
                                self.tel.on_shed();
                                Self::bump_region(&mut self.region_shed, region);
                                self.bump_skew_cell(&rep.model.origin);
                            }
                        }
                        // The sender's true position is declared so
                        // regional outages (failed base stations) can
                        // match it; without regional outages in the
                        // profile this is bit-identical to plain `send`.
                        Some(ch) => ch.send_from(
                            t,
                            car.position,
                            (rep.node, rep.model.origin, rep.model.velocity, region),
                        ),
                    }
                }
            }
            if let Some(ch) = &mut self.channel {
                for d in ch.poll(t) {
                    // Admission is drawn per arrival: server-actuated
                    // drops happen at the input queue, after the wireless
                    // hop. A zero-fault profile delivers same-tick in
                    // send order, so the draw sequence is identical to
                    // the perfect-channel path above.
                    let (node, origin, velocity, region) = d.payload;
                    if admission >= 1.0 || self.drop_rng.gen_bool(admission) {
                        // Ingest at *send* time: delayed copies arrive
                        // stale, and the node store's per-node reorder
                        // guard (not this loop) decides what still
                        // applies — duplicates and overtaken reports
                        // fall out there.
                        if self.server.ingest(node, d.sent_at, origin, velocity) {
                            self.updates_processed += 1;
                            self.tel.on_admitted();
                            Self::bump_region(&mut self.region_admitted, region);
                        }
                    } else {
                        self.tel.on_shed();
                        Self::bump_region(&mut self.region_shed, region);
                        self.bump_skew_cell(&origin);
                    }
                }
            }

            if tick % adapt_every == 0 && tick != total_ticks {
                self.adapt(trace.cars(tick), queries, sc.throttle);
            }

            if reference
                .frames
                .get(next_frame)
                .is_some_and(|f| f.tick == tick)
            {
                let frame = &reference.frames[next_frame];
                self.server.evaluate_into(t, &mut self.shed_results);
                let server = &self.server;
                self.accumulator.record_round(
                    &frame.results,
                    &self.shed_results,
                    |n| frame.predictions[n as usize],
                    |n| server.predict(n, t),
                );
                // Hand the round's realized error mass to feedback-aware
                // policies (a no-op for the feed-forward Section 4.2
                // policies, keeping their outcomes bit-identical).
                let (c_tot, p_tot) = self.accumulator.totals();
                let round_queries = frame.results.len().max(1) as f64;
                self.shedding.observe_round(&RoundFeedback {
                    position_error: (p_tot - self.prev_totals.1) / round_queries,
                    containment_error: (c_tot - self.prev_totals.0) / round_queries,
                    region_admitted: &self.region_admitted,
                    region_shed: &self.region_shed,
                    regions: self.plan.regions(),
                });
                self.prev_totals = (c_tot, p_tot);
                next_frame += 1;
            }
        }

        let faults = match &self.channel {
            Some(ch) => FaultReport::from_channel(ch.stats(), ch.pending()),
            None => FaultReport::default(),
        };
        self.tel
            .flush_regions(&self.region_admitted, &self.region_shed);
        self.flush_shed_skew();
        if let Some(ch) = &self.channel {
            self.tel.on_channel(&ch.stats());
        }
        // End-of-run per-shard accounting (unified engine): final
        // node ownership, cumulative round wall time, total handoffs,
        // and the online re-striper's migration counters.
        if let Some(stats) = self.server.shard_stats() {
            self.tel.on_shards(&stats);
        }
        if let Some(rs) = self.server.restripe_stats() {
            self.tel.on_restripe(&rs);
        }
        let telemetry = self.tel.snapshot(&format!("lane:{}", self.policy.name()));
        PolicyOutcome {
            policy: self.policy,
            metrics: self.accumulator.report(),
            faults,
            telemetry,
            updates_sent: self.updates_sent,
            updates_processed: self.updates_processed,
            processed_fraction: if reference.reference_updates > 0 {
                self.updates_processed as f64 / reference.reference_updates as f64
            } else {
                0.0
            },
            adapt_micros: self.adapt_micros,
            plan_regions: self.plan.len(),
            shed_skew: if self.shed_skew_weight > 0.0 {
                self.shed_skew_sum / self.shed_skew_weight
            } else {
                0.0
            },
            plan_skew: if self.plan_epochs > 0 {
                self.plan_skew_sum / self.plan_epochs as f64
            } else {
                0.0
            },
        }
    }
}

/// The composed pipeline: setup → trace → reference → policy lanes.
#[derive(Debug, Clone, Copy)]
pub struct SimPipeline {
    parallelism: Parallelism,
    telemetry: bool,
    engine: EvalEngine,
    rebalance: bool,
}

impl Default for SimPipeline {
    fn default() -> Self {
        SimPipeline {
            parallelism: Parallelism::default(),
            telemetry: true,
            engine: EvalEngine::default(),
            rebalance: rebalance_from_env(false),
        }
    }
}

impl SimPipeline {
    /// A pipeline with automatic lane parallelism and telemetry enabled.
    pub fn new() -> Self {
        SimPipeline::default()
    }

    /// Overrides how policy lanes are executed.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables or disables telemetry recording at runtime. Disabled
    /// lanes do identical simulation work and produce bit-identical
    /// policy outcomes; only the snapshots come back empty.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the CQ evaluation engine used by the reference server and
    /// every policy lane. Every engine configuration yields bit-identical
    /// reports (asserted by `tests/pipeline.rs`); the legacy oracle
    /// exists behind the default-on `legacy-oracle` feature.
    #[must_use]
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables the unified engine's load-aware striping and
    /// online re-striper for the reference server and every policy lane
    /// (bit-identical either way — `restripe_equiv.rs`). The default
    /// follows the `LIRA_REBALANCE` environment variable (off when
    /// unset).
    #[must_use]
    pub fn with_rebalance(mut self, rebalance: bool) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Runs the scenario for the given policies and reports the comparison.
    pub fn run(&self, sc: &Scenario, policies: &[Policy]) -> RunReport {
        let ptel = PipelineTelemetry::new(self.telemetry);
        let stage = Instant::now();
        let mut setup = SimSetup::build(sc, sc.calibrate_model);
        ptel.on_setup(stage.elapsed().as_micros() as u64);
        let stage = Instant::now();
        let trace = setup.record_trace(sc);
        ptel.on_trace(stage.elapsed().as_micros() as u64);
        // Sequential mode means *no* spawned threads at all: lanes on the
        // calling thread, and unified evaluation phases inlined too.
        let sequential_eval = self.parallelism == Parallelism::Sequential;
        let stage = Instant::now();
        let reference = ReferenceTimeline::compute_opts(
            &trace,
            &setup,
            sc,
            self.engine,
            sequential_eval,
            self.rebalance,
        );
        ptel.on_reference(stage.elapsed().as_micros() as u64);

        let lanes: Vec<PolicyLane> = policies
            .iter()
            .enumerate()
            .map(|(i, &policy)| {
                PolicyLane::new(
                    policy,
                    i,
                    &setup,
                    sc,
                    self.telemetry,
                    self.engine,
                    sequential_eval,
                    self.rebalance,
                )
            })
            .collect();

        let stage = Instant::now();
        let run_parallel = self.parallelism == Parallelism::Auto && lanes.len() >= 2;
        let outcomes: Vec<PolicyOutcome> = if run_parallel {
            let (trace, reference, queries) = (&trace, &reference, &setup.queries[..]);
            std::thread::scope(|scope| {
                let handles: Vec<_> = lanes
                    .into_iter()
                    .map(|lane| scope.spawn(move || lane.run(trace, reference, queries, sc)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("policy lane panicked"))
                    .collect()
            })
        } else {
            lanes
                .into_iter()
                .map(|lane| lane.run(&trace, &reference, &setup.queries, sc))
                .collect()
        };
        ptel.on_lanes(stage.elapsed().as_micros() as u64);

        RunReport {
            reference_updates: reference.reference_updates,
            num_queries: setup.queries.len(),
            num_cars: sc.num_cars,
            outcomes,
            pipeline_telemetry: ptel.snapshot(),
        }
    }
}
