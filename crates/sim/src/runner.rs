//! The end-to-end evaluation harness: one traffic simulation feeding a
//! *reference* CQ server (`Δ⊢` everywhere — the paper's definition of the
//! correct answer) and one shedding CQ server per policy under test, with
//! the accuracy metrics of Section 4.1 accumulated at every evaluation
//! round.

use std::time::Instant;

use lira_core::baselines::{lira_grid_plan, uniform_plan};
use lira_core::plan::SheddingPlan;
use lira_core::reduction::ReductionModel;
use lira_core::shedder::LiraShedder;
use lira_core::stats_grid::StatsGrid;
use lira_mobility::generator::{generate_network, NetworkConfig};
use lira_mobility::motion::DeadReckoner;
use lira_mobility::simulator::{TrafficConfig, TrafficSimulator};
use lira_mobility::traffic::TrafficDemand;
use lira_server::cq_engine::CqServer;
use lira_server::query::RangeQuery;
use lira_workload::{generate_queries, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{evaluation_errors, MetricsAccumulator, MetricsReport};
use crate::scenario::Scenario;

/// A load-shedding policy under evaluation (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Full LIRA: GRIDREDUCE partitioning + GREEDYINCREMENT throttlers.
    Lira,
    /// Equal-size `l`-partitioning + GREEDYINCREMENT (no GRIDREDUCE).
    LiraGrid,
    /// One system-wide inaccuracy threshold.
    UniformDelta,
    /// No source-side shedding; the server randomly drops the excess.
    RandomDrop,
}

impl Policy {
    /// All four policies, in the paper's comparison order.
    pub const ALL: [Policy; 4] = [
        Policy::Lira,
        Policy::LiraGrid,
        Policy::UniformDelta,
        Policy::RandomDrop,
    ];

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Lira => "LIRA",
            Policy::LiraGrid => "Lira-Grid",
            Policy::UniformDelta => "Uniform Delta",
            Policy::RandomDrop => "Random Drop",
        }
    }
}

/// Per-policy outcome of a run.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The evaluated policy.
    pub policy: Policy,
    /// Accuracy metrics vs. the reference server.
    pub metrics: MetricsReport,
    /// Position updates sent by the mobile nodes (wireless cost).
    pub updates_sent: u64,
    /// Updates actually applied by the server (differs from `updates_sent`
    /// only for Random Drop).
    pub updates_processed: u64,
    /// `updates_processed` relative to the reference server's update count
    /// — should track the throttle fraction `z` for the source-actuated
    /// policies.
    pub processed_fraction: f64,
    /// Microseconds spent in each adaptation step (server-side cost,
    /// Figure 14).
    pub adapt_micros: Vec<u64>,
    /// Number of regions in the final plan.
    pub plan_regions: usize,
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Updates received by the reference (`Δ⊢`) server.
    pub reference_updates: u64,
    /// Number of registered queries.
    pub num_queries: usize,
    /// Number of mobile nodes.
    pub num_cars: usize,
    /// Per-policy outcomes, in the order requested.
    pub outcomes: Vec<PolicyOutcome>,
}

impl RunReport {
    /// The outcome for a given policy, if it was evaluated.
    pub fn outcome(&self, policy: Policy) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }
}

/// Internal per-policy simulation state.
struct PolicyState {
    policy: Policy,
    server: CqServer,
    reckoners: Vec<DeadReckoner>,
    plan: SheddingPlan,
    shedder: Option<LiraShedder>,
    drop_rng: SmallRng,
    updates_sent: u64,
    updates_processed: u64,
    adapt_micros: Vec<u64>,
    accumulator: MetricsAccumulator,
}

/// Runs one scenario, evaluating all `policies` over the *same* traffic and
/// query workload (shared reference server), and returns the comparison.
pub fn run_scenario(sc: &Scenario, policies: &[Policy]) -> RunReport {
    let config = sc.lira_config();
    config.validate().expect("scenario produces a valid LiraConfig");
    let bounds = sc.bounds();
    // The analytic default model; possibly replaced by an empirically
    // calibrated one after traffic warm-up (below).
    let model = ReductionModel::analytic(sc.delta_min, sc.delta_max, config.kappa());

    // --- Traffic substrate -------------------------------------------------
    let network = generate_network(&NetworkConfig {
        bounds,
        spacing: sc.road_spacing,
        arterial_period: sc.arterial_period,
        expressway_period: sc.expressway_period,
        jitter_frac: 0.2,
        seed: sc.seed,
    });
    let demand = TrafficDemand::random_hotspots(&bounds, sc.hotspots, sc.seed);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: sc.num_cars,
            seed: sc.seed,
        },
    );
    let warmup_ticks = (sc.warmup_s / sc.dt).round() as usize;
    for _ in 0..warmup_ticks {
        sim.step(sc.dt);
    }

    // Optionally calibrate f(Δ) from the workload itself: replay a short
    // trace of a cloned simulation through dead reckoning at sampled
    // thresholds (the simulation is deterministic, so the clone leaves the
    // measured run untouched).
    let model = if sc.calibrate_model {
        let mut probe = sim.clone();
        let trace = lira_mobility::trace::Trace::record(&mut probe, 180.0_f64.min(sc.duration_s), sc.dt);
        trace
            .calibrate_reduction(sc.delta_min, sc.delta_max, config.kappa(), 10)
            .expect("calibration trace produces updates")
    } else {
        model
    };

    // --- Query workload ----------------------------------------------------
    let positions: Vec<_> = sim.cars().iter().map(|c| c.position()).collect();
    let queries = generate_queries(
        &bounds,
        &positions,
        &WorkloadConfig::from_ratio(
            sc.query_distribution,
            sc.num_cars,
            sc.query_ratio,
            sc.query_side,
            sc.seed,
        ),
    );

    // --- Servers -----------------------------------------------------------
    let index_side = 64usize;
    let new_server = |queries: &[RangeQuery]| {
        let mut s = CqServer::new(bounds, sc.num_cars, index_side);
        s.register_queries(queries.iter().copied());
        s
    };
    let mut reference = new_server(&queries);
    let mut ref_reckoners = vec![DeadReckoner::new(); sc.num_cars];
    let mut reference_updates = 0u64;

    let mut states: Vec<PolicyState> = policies
        .iter()
        .enumerate()
        .map(|(i, &policy)| PolicyState {
            policy,
            server: new_server(&queries),
            reckoners: vec![DeadReckoner::new(); sc.num_cars],
            plan: SheddingPlan::uniform(bounds, sc.delta_min),
            shedder: match policy {
                Policy::Lira => Some(
                    LiraShedder::new(config.clone(), 1000)
                        .expect("validated config")
                        .with_model(model.clone()),
                ),
                _ => None,
            },
            drop_rng: SmallRng::seed_from_u64(sc.seed.wrapping_add(1000 + i as u64)),
            updates_sent: 0,
            updates_processed: 0,
            adapt_micros: Vec::new(),
            accumulator: MetricsAccumulator::new(queries.len()),
        })
        .collect();

    // --- Adaptation closure --------------------------------------------------
    let mut grid = StatsGrid::new(sc.alpha, bounds).expect("valid grid");
    let adapt = |grid: &mut StatsGrid,
                 sim: &TrafficSimulator,
                 queries: &[RangeQuery],
                 states: &mut [PolicyState]| {
        grid.begin_snapshot();
        for car in sim.cars() {
            grid.observe_node(&car.position(), car.speed(), 1.0);
        }
        for q in queries {
            grid.observe_query(&q.range);
        }
        grid.commit_snapshot();
        for st in states.iter_mut() {
            let started = Instant::now();
            st.plan = match st.policy {
                Policy::Lira => {
                    let adaptation = st
                        .shedder
                        .as_ref()
                        .expect("Lira state holds a shedder")
                        .adapt_with_throttle(grid, sc.throttle)
                        .expect("adaptation succeeds on a committed grid");
                    adaptation.plan
                }
                Policy::LiraGrid => {
                    lira_grid_plan(grid, &model, &config)
                        .expect("lira-grid plan succeeds")
                        .0
                }
                Policy::UniformDelta => uniform_plan(bounds, &model, sc.throttle),
                // Random Drop nodes always run at the ideal resolution.
                Policy::RandomDrop => SheddingPlan::uniform(bounds, sc.delta_min),
            };
            st.adapt_micros.push(started.elapsed().as_micros() as u64);
        }
    };

    adapt(&mut grid, &sim, &queries, &mut states);

    // --- Main measured loop --------------------------------------------------
    let total_ticks = (sc.duration_s / sc.dt).round() as usize;
    let eval_every = (sc.eval_period_s / sc.dt).round().max(1.0) as usize;
    let adapt_every = (sc.adapt_period_s / sc.dt).round().max(1.0) as usize;

    for tick in 1..=total_ticks {
        sim.step(sc.dt);
        let t = sim.time();

        for (i, car) in sim.cars().iter().enumerate() {
            let (pos, vel) = (car.position(), car.velocity());
            if let Some(rep) = ref_reckoners[i].observe(i as u32, t, pos, vel, sc.delta_min) {
                reference_updates += 1;
                reference.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
            }
            for st in states.iter_mut() {
                let delta = st.plan.throttler_at(&pos);
                if let Some(rep) = st.reckoners[i].observe(i as u32, t, pos, vel, delta) {
                    st.updates_sent += 1;
                    // Random Drop: the update is sent (wireless cost paid)
                    // but the overloaded server only processes a z-fraction.
                    let admitted = match st.policy {
                        Policy::RandomDrop => st.drop_rng.gen_bool(sc.throttle.clamp(0.0, 1.0)),
                        _ => true,
                    };
                    if admitted {
                        st.updates_processed += 1;
                        st.server.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
                    }
                }
            }
        }

        if tick % adapt_every == 0 && tick != total_ticks {
            adapt(&mut grid, &sim, &queries, &mut states);
        }

        if tick % eval_every == 0 {
            let ref_results = reference.evaluate(t);
            for st in states.iter_mut() {
                let shed_results = st.server.evaluate(t);
                let errors = evaluation_errors(
                    &ref_results,
                    &shed_results,
                    |n| reference.predict(n, t),
                    |n| st.server.predict(n, t),
                );
                st.accumulator.record(&errors);
            }
        }
    }

    let outcomes = states
        .into_iter()
        .map(|st| PolicyOutcome {
            policy: st.policy,
            metrics: st.accumulator.report(),
            updates_sent: st.updates_sent,
            updates_processed: st.updates_processed,
            processed_fraction: if reference_updates > 0 {
                st.updates_processed as f64 / reference_updates as f64
            } else {
                0.0
            },
            adapt_micros: st.adapt_micros,
            plan_regions: st.plan.len(),
        })
        .collect();

    RunReport {
        reference_updates,
        num_queries: queries.len(),
        num_cars: sc.num_cars,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_report() {
        let sc = Scenario::small(3);
        let report = run_scenario(&sc, &Policy::ALL);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.num_cars, 250);
        assert_eq!(report.num_queries, 10);
        assert!(report.reference_updates > 0);
        for o in &report.outcomes {
            assert!(o.updates_sent > 0, "{:?} sent no updates", o.policy);
            assert!(o.updates_processed <= o.updates_sent);
            assert!(!o.adapt_micros.is_empty());
        }
    }

    #[test]
    fn source_actuated_policies_respect_budget() {
        let sc = Scenario::small(5);
        let report = run_scenario(&sc, &[Policy::Lira, Policy::LiraGrid, Policy::UniformDelta]);
        for o in &report.outcomes {
            assert_eq!(o.updates_sent, o.updates_processed, "{:?}", o.policy);
            // Budget: processed fraction near or below z (dead-reckoning
            // granularity and transient adaptation leave some slack).
            assert!(
                o.processed_fraction < sc.throttle * 1.35 + 0.05,
                "{:?} spent {} of the reference updates (z = {})",
                o.policy,
                o.processed_fraction,
                sc.throttle
            );
        }
    }

    #[test]
    fn random_drop_pays_full_wireless_cost() {
        let sc = Scenario::small(7);
        let report = run_scenario(&sc, &[Policy::RandomDrop]);
        let o = &report.outcomes[0];
        // The nodes still send (almost) the reference volume...
        assert!(
            o.updates_sent as f64 > 0.85 * report.reference_updates as f64,
            "sent {} vs reference {}",
            o.updates_sent,
            report.reference_updates
        );
        // ...but only ~z of it is processed.
        let processed_ratio = o.updates_processed as f64 / o.updates_sent as f64;
        assert!(
            (processed_ratio - sc.throttle).abs() < 0.1,
            "processed ratio {processed_ratio}"
        );
    }

    #[test]
    fn lira_beats_random_drop_on_position_error() {
        let sc = Scenario::small(11);
        let report = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
        let lira = report.outcome(Policy::Lira).unwrap();
        let drop = report.outcome(Policy::RandomDrop).unwrap();
        assert!(
            drop.metrics.mean_position > lira.metrics.mean_position,
            "LIRA {} m vs Random Drop {} m",
            lira.metrics.mean_position,
            drop.metrics.mean_position
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sc = Scenario::small(13);
        let a = run_scenario(&sc, &[Policy::Lira]);
        let b = run_scenario(&sc, &[Policy::Lira]);
        assert_eq!(a.reference_updates, b.reference_updates);
        assert_eq!(
            a.outcomes[0].metrics.mean_containment,
            b.outcomes[0].metrics.mean_containment
        );
        assert_eq!(a.outcomes[0].updates_sent, b.outcomes[0].updates_sent);
    }
}
