//! The end-to-end evaluation entry point: one traffic trace feeding a
//! *reference* CQ server (`Δ⊢` everywhere — the paper's definition of the
//! correct answer) and one shedding CQ server per policy under test, with
//! the accuracy metrics of Section 4.1 accumulated at every evaluation
//! round.
//!
//! The actual staging (trace recording, reference replay, per-policy
//! lanes on scoped threads) lives in [`crate::pipeline`]; this module
//! holds the policy roster and the report types.

use lira_core::config::LiraConfig;
use lira_core::policy::{
    LiraGridPolicy, LiraPolicy, RandomDropPolicy, SheddingPolicy, UniformDeltaPolicy,
};
use lira_core::reduction::ReductionModel;
use lira_core::shedder::LiraShedder;
use lira_core::utility::{UtilityGreedy, UtilityModel};

use crate::metrics::{FaultReport, MetricsReport};
use crate::pipeline::SimPipeline;
use crate::scenario::Scenario;

/// A load-shedding policy under evaluation (Section 4.2). This is only a
/// *roster* — construction happens in [`Policy::build`], and everything
/// after construction goes through the
/// [`SheddingPolicy`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Full LIRA: GRIDREDUCE partitioning + GREEDYINCREMENT throttlers.
    Lira,
    /// Equal-size `l`-partitioning + GREEDYINCREMENT (no GRIDREDUCE).
    LiraGrid,
    /// One system-wide inaccuracy threshold.
    UniformDelta,
    /// No source-side shedding; the server randomly drops the excess.
    RandomDrop,
    /// eSPICE-style utility shedding: greedy budget assignment in
    /// utility-per-budget-unit order.
    UtilityGreedy,
    /// gSPICE-style utility shedding: realized-loss EWMA model steering a
    /// proportional water-fill.
    UtilityModel,
}

impl Policy {
    /// All six policies: the paper's four (comparison order preserved)
    /// followed by the SPICE-line utility family.
    pub const ALL: [Policy; 6] = [
        Policy::Lira,
        Policy::LiraGrid,
        Policy::UniformDelta,
        Policy::RandomDrop,
        Policy::UtilityGreedy,
        Policy::UtilityModel,
    ];

    /// Display name used in experiment output, delegated to the policy
    /// implementations (the single source of these strings).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Lira => LiraPolicy::NAME,
            Policy::LiraGrid => LiraGridPolicy::NAME,
            Policy::UniformDelta => UniformDeltaPolicy::NAME,
            Policy::RandomDrop => RandomDropPolicy::NAME,
            Policy::UtilityGreedy => UtilityGreedy::NAME,
            Policy::UtilityModel => UtilityModel::NAME,
        }
    }

    /// Constructs the policy implementation for a scenario. The one place
    /// that matches on the roster; the simulation loop itself only sees
    /// `dyn SheddingPolicy`.
    pub fn build(
        self,
        sc: &Scenario,
        config: &LiraConfig,
        model: &ReductionModel,
    ) -> Box<dyn SheddingPolicy> {
        match self {
            Policy::Lira => Box::new(LiraPolicy::from_shedder(
                LiraShedder::new(config.clone(), 1000)
                    .expect("validated config")
                    .with_model(model.clone()),
            )),
            Policy::LiraGrid => Box::new(LiraGridPolicy::new(config.clone(), model.clone())),
            Policy::UniformDelta => Box::new(UniformDeltaPolicy::new(config.bounds, model.clone())),
            Policy::RandomDrop => Box::new(RandomDropPolicy::new(config.bounds, sc.delta_min)),
            Policy::UtilityGreedy => Box::new(UtilityGreedy::new(config.clone(), model.clone())),
            Policy::UtilityModel => Box::new(UtilityModel::new(config.clone(), model.clone())),
        }
    }
}

/// Per-policy outcome of a run.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The evaluated policy.
    pub policy: Policy,
    /// Accuracy metrics vs. the reference server.
    pub metrics: MetricsReport,
    /// Uplink delivery/loss/retry accounting (all zeros when the
    /// scenario runs the perfect channel).
    pub faults: FaultReport,
    /// The lane's telemetry snapshot (metrics schema in
    /// docs/TELEMETRY.md); `enabled: false` with zeroed metrics when the
    /// pipeline ran with telemetry off.
    pub telemetry: lira_core::telemetry::TelemetrySnapshot,
    /// Position updates sent by the mobile nodes (wireless cost; under
    /// faults, see `faults.transmissions` for the airtime actually paid).
    pub updates_sent: u64,
    /// Updates actually applied by the server (differs from `updates_sent`
    /// only for Random Drop).
    pub updates_processed: u64,
    /// `updates_processed` relative to the reference server's update count
    /// — should track the throttle fraction `z` for the source-actuated
    /// policies.
    pub processed_fraction: f64,
    /// Microseconds spent in each adaptation step (server-side cost,
    /// Figure 14).
    pub adapt_micros: Vec<u64>,
    /// Number of regions in the final plan.
    pub plan_regions: usize,
    /// How unevenly server-actuated drops landed across the monitored
    /// space: the drop-volume-weighted mean over plan epochs of the
    /// coefficient of variation of shed counts on a fixed 4×4 spatial
    /// grid. `0` for source-actuated policies (they shed at the sender,
    /// not the input queue); for Random Drop it tracks how strongly the
    /// dropped volume concentrates in hotspots.
    pub shed_skew: f64,
    /// How unevenly the *plan itself* spreads its thresholds: the mean
    /// over adaptation epochs of the CoV of per-region `Δ` values. `0`
    /// for single-threshold plans (Uniform Delta, Random Drop); higher
    /// means the policy differentiates regions more aggressively.
    pub plan_skew: f64,
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Updates received by the reference (`Δ⊢`) server.
    pub reference_updates: u64,
    /// Number of registered queries.
    pub num_queries: usize,
    /// Number of mobile nodes.
    pub num_cars: usize,
    /// Per-policy outcomes, in the order requested.
    pub outcomes: Vec<PolicyOutcome>,
    /// Stage wall-time telemetry for the whole pipeline run (setup,
    /// trace, reference replay, lanes).
    pub pipeline_telemetry: lira_core::telemetry::TelemetrySnapshot,
}

impl RunReport {
    /// The outcome for a given policy, if it was evaluated.
    pub fn outcome(&self, policy: Policy) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }
}

/// Runs one scenario, evaluating all `policies` over the *same* traffic and
/// query workload (shared reference server), and returns the comparison.
/// With two or more policies the per-policy lanes run on scoped threads;
/// see [`SimPipeline`] for execution control.
pub fn run_scenario(sc: &Scenario, policies: &[Policy]) -> RunReport {
    SimPipeline::new().run(sc, policies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_report() {
        let sc = Scenario::small(3);
        let report = run_scenario(&sc, &Policy::ALL);
        assert_eq!(report.outcomes.len(), 6);
        assert_eq!(report.num_cars, 250);
        assert_eq!(report.num_queries, 10);
        assert!(report.reference_updates > 0);
        for o in &report.outcomes {
            assert!(o.updates_sent > 0, "{:?} sent no updates", o.policy);
            assert!(o.updates_processed <= o.updates_sent);
            assert!(!o.adapt_micros.is_empty());
        }
    }

    #[test]
    fn source_actuated_policies_respect_budget() {
        let sc = Scenario::small(5);
        let report = run_scenario(
            &sc,
            &[
                Policy::Lira,
                Policy::LiraGrid,
                Policy::UniformDelta,
                Policy::UtilityGreedy,
                Policy::UtilityModel,
            ],
        );
        for o in &report.outcomes {
            assert_eq!(o.updates_sent, o.updates_processed, "{:?}", o.policy);
            // Budget: processed fraction near or below z (dead-reckoning
            // granularity and transient adaptation leave some slack).
            assert!(
                o.processed_fraction < sc.throttle * 1.35 + 0.05,
                "{:?} spent {} of the reference updates (z = {})",
                o.policy,
                o.processed_fraction,
                sc.throttle
            );
        }
    }

    #[test]
    fn random_drop_pays_full_wireless_cost() {
        let sc = Scenario::small(7);
        let report = run_scenario(&sc, &[Policy::RandomDrop]);
        let o = &report.outcomes[0];
        // The nodes still send (almost) the reference volume...
        assert!(
            o.updates_sent as f64 > 0.85 * report.reference_updates as f64,
            "sent {} vs reference {}",
            o.updates_sent,
            report.reference_updates
        );
        // ...but only ~z of it is processed.
        let processed_ratio = o.updates_processed as f64 / o.updates_sent as f64;
        assert!(
            (processed_ratio - sc.throttle).abs() < 0.1,
            "processed ratio {processed_ratio}"
        );
    }

    #[test]
    fn lira_beats_random_drop_on_position_error() {
        let sc = Scenario::small(11);
        let report = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
        let lira = report.outcome(Policy::Lira).unwrap();
        let drop = report.outcome(Policy::RandomDrop).unwrap();
        assert!(
            drop.metrics.mean_position > lira.metrics.mean_position,
            "LIRA {} m vs Random Drop {} m",
            lira.metrics.mean_position,
            drop.metrics.mean_position
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sc = Scenario::small(13);
        let a = run_scenario(&sc, &[Policy::Lira]);
        let b = run_scenario(&sc, &[Policy::Lira]);
        assert_eq!(a.reference_updates, b.reference_updates);
        assert_eq!(
            a.outcomes[0].metrics.mean_containment,
            b.outcomes[0].metrics.mean_containment
        );
        assert_eq!(a.outcomes[0].updates_sent, b.outcomes[0].updates_sent);
    }

    #[test]
    fn names_come_from_the_policy_impls() {
        let names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "LIRA",
                "Lira-Grid",
                "Uniform Delta",
                "Random Drop",
                "Utility Greedy",
                "Utility Model"
            ]
        );
    }
}
