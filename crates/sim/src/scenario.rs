//! Experiment scenarios: bundled configuration for the end-to-end runs,
//! with presets matching Table 2 of the paper.

use lira_core::config::LiraConfig;
use lira_core::geometry::Rect;
use lira_server::channel::FaultProfile;
use lira_workload::QueryDistribution;

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Side of the (square) monitored space, meters.
    pub space_side: f64,
    /// Road-grid spacing, meters.
    pub road_spacing: f64,
    /// Every n-th grid line is an arterial / expressway.
    pub arterial_period: usize,
    pub expressway_period: usize,
    /// Number of traffic hotspots.
    pub hotspots: usize,
    /// Number of mobile nodes.
    pub num_cars: usize,

    /// Query placement distribution.
    pub query_distribution: QueryDistribution,
    /// Queries per node, `m/n` (Table 2 default 0.01).
    pub query_ratio: f64,
    /// Query side-length parameter `w`, meters.
    pub query_side: f64,

    /// Number of shedding regions `l`.
    pub num_regions: usize,
    /// Statistics-grid side cell count `α`.
    pub alpha: usize,
    /// Throttle fraction `z`.
    pub throttle: f64,
    /// `Δ⊢`, meters.
    pub delta_min: f64,
    /// `Δ⊣`, meters.
    pub delta_max: f64,
    /// Greedy increment `c_Δ`, meters.
    pub increment: f64,
    /// Fairness threshold `Δ⇔`, meters.
    pub fairness: f64,
    /// Speed-factor extension on/off.
    pub use_speed_factor: bool,
    /// When set, the runner calibrates the update-reduction model `f(Δ)`
    /// empirically from a short trace of the warmed-up traffic instead of
    /// using the analytic default (ablation: Section "empirical vs
    /// analytic f" in DESIGN.md).
    pub calibrate_model: bool,

    /// Traffic warm-up before measurement, seconds.
    pub warmup_s: f64,
    /// Measured duration, seconds.
    pub duration_s: f64,
    /// Simulation tick, seconds.
    pub dt: f64,
    /// Query-evaluation period, seconds.
    pub eval_period_s: f64,
    /// Plan re-adaptation period, seconds.
    pub adapt_period_s: f64,

    /// Uplink fault model between the dead reckoners and the server's
    /// input queue. `None` is the historical perfect channel (and takes
    /// the exact code path the seed runs always took); `Some` routes
    /// every policy lane's updates through a
    /// [`FaultyChannel`](lira_server::channel::FaultyChannel) seeded from
    /// the lane-RNG rule (`seed + 2000 + lane index`).
    pub faults: Option<FaultProfile>,

    /// Master seed (traffic, queries, and drop decisions derive from it).
    pub seed: u64,
}

impl Default for Scenario {
    /// A medium scenario: ¼ of the paper's area, paper-like parameters,
    /// sized to run a full policy comparison in seconds.
    fn default() -> Self {
        Scenario {
            space_side: 7_071.0, // ~50 km²
            road_spacing: 250.0,
            arterial_period: 4,
            expressway_period: 16,
            hotspots: 5,
            num_cars: 2_000,
            query_distribution: QueryDistribution::Proportional,
            query_ratio: 0.01,
            query_side: 1_000.0,
            num_regions: 100,
            alpha: LiraConfig::alpha_for(100, 10.0),
            throttle: 0.5,
            delta_min: 5.0,
            delta_max: 100.0,
            increment: 1.0,
            fairness: 50.0,
            use_speed_factor: true,
            calibrate_model: false,
            warmup_s: 120.0,
            duration_s: 300.0,
            dt: 1.0,
            eval_period_s: 15.0,
            adapt_period_s: 300.0,
            faults: None,
            seed: 17,
        }
    }
}

impl Scenario {
    /// A small, fast scenario for unit/integration tests (~2 km², a few
    /// hundred cars, tens of seconds of simulated time).
    pub fn small(seed: u64) -> Self {
        Scenario {
            space_side: 2_000.0,
            road_spacing: 200.0,
            arterial_period: 3,
            expressway_period: 9,
            hotspots: 3,
            num_cars: 250,
            query_ratio: 0.04,
            query_side: 400.0,
            num_regions: 13,
            alpha: 32,
            warmup_s: 30.0,
            duration_s: 120.0,
            eval_period_s: 10.0,
            adapt_period_s: 120.0,
            seed,
            ..Scenario::default()
        }
    }

    /// The paper's full Table 2 setup: ~200 km², `l = 250`, `α = 128`,
    /// 10 000 nodes, one hour of trace.
    pub fn paper(seed: u64) -> Self {
        Scenario {
            space_side: 14_142.0,
            num_cars: 10_000,
            num_regions: 250,
            alpha: 128,
            warmup_s: 300.0,
            duration_s: 3_600.0,
            adapt_period_s: 600.0,
            seed,
            ..Scenario::default()
        }
    }

    /// The monitored space.
    pub fn bounds(&self) -> Rect {
        Rect::from_coords(0.0, 0.0, self.space_side, self.space_side)
    }

    /// The LIRA configuration implied by this scenario.
    pub fn lira_config(&self) -> LiraConfig {
        LiraConfig {
            bounds: self.bounds(),
            num_regions: self.num_regions,
            alpha: self.alpha,
            throttle: self.throttle,
            delta_min: self.delta_min,
            delta_max: self.delta_max,
            increment: self.increment,
            fairness: self.fairness,
            use_speed_factor: self.use_speed_factor,
        }
    }

    /// Sets the number of shedding regions and re-derives `α` with the
    /// paper's `x = 10` rule.
    pub fn with_regions(mut self, l: usize) -> Self {
        self.num_regions = l;
        self.alpha = LiraConfig::alpha_for(l, 10.0);
        self
    }

    /// Routes the uplink through a faulty channel. The profile is
    /// validated here so a bad sweep parameter fails loudly at scenario
    /// construction, not mid-run inside a lane thread.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        profile.validate().expect("valid fault profile");
        self.faults = Some(profile);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for sc in [Scenario::default(), Scenario::small(1), Scenario::paper(1)] {
            sc.lira_config()
                .validate()
                .unwrap_or_else(|e| panic!("{sc:?}: {e}"));
            assert!(sc.warmup_s >= 0.0 && sc.duration_s > 0.0);
            assert!(sc.num_cars > 0);
        }
    }

    #[test]
    fn paper_preset_matches_table2() {
        let sc = Scenario::paper(0);
        assert_eq!(sc.num_regions, 250);
        assert_eq!(sc.alpha, 128);
        assert_eq!(sc.throttle, 0.5);
        assert_eq!(sc.delta_min, 5.0);
        assert_eq!(sc.delta_max, 100.0);
        assert_eq!(sc.increment, 1.0);
        assert_eq!(sc.fairness, 50.0);
        assert_eq!(sc.query_ratio, 0.01);
        assert_eq!(sc.query_side, 1000.0);
        assert_eq!(sc.duration_s, 3600.0);
        // ~200 km².
        assert!((sc.space_side * sc.space_side / 1e6 - 200.0).abs() < 1.0);
    }

    #[test]
    fn with_regions_rederives_alpha() {
        let sc = Scenario::default().with_regions(250);
        assert_eq!(sc.alpha, 128);
        let sc = Scenario::default().with_regions(4000);
        assert_eq!(sc.alpha, 512);
    }
}
