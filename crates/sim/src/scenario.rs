//! Experiment scenarios, re-exported from their home in
//! [`lira_workload::scenario`].
//!
//! The `Scenario` type moved into `lira-workload` when the adversarial
//! catalog landed (the catalog composes scenarios from mobility demand,
//! fleet classes, and fault profiles, and `lira-sim` already depends on
//! `lira-workload` — not the other way around). This module remains so
//! `lira_sim::scenario::Scenario` and the prelude keep working.

pub use lira_workload::catalog::NamedScenario;
pub use lira_workload::scenario::{DemandPhase, PhaseSchedule, Scenario, SpeedClass};
