//! Telemetry wiring for the simulation harness: pre-registered metric
//! handles for the hot paths of a policy lane and of the closed-loop
//! adaptive runner.
//!
//! The core algorithms stay telemetry-free — they return plain counters
//! ([`GridReduceStats`](lira_core::grid_reduce::GridReduceStats),
//! [`AdaptCost`], the THROTLOOP step classification) that this module
//! copies into per-lane [`Telemetry`] registries at adaptation
//! boundaries. Recording is a relaxed atomic per call, so the lane loop
//! pays the same instructions whether telemetry is enabled, runtime
//! disabled, or compiled out with the `telemetry-off` feature; policy
//! outcomes are bit-identical in all three modes (see
//! `tests/telemetry.rs`).
//!
//! Metric names, units and firing points are documented in
//! `docs/TELEMETRY.md`.

use std::sync::Arc;

use lira_core::plan::SheddingPlan;
use lira_core::policy::AdaptCost;
use lira_core::telemetry::{
    Counter, Gauge, Histogram, Level, MetricSpec, Telemetry, TelemetrySnapshot,
};
use lira_core::throt_loop::ThrotLoop;
use lira_server::channel::ChannelStats;
use lira_server::unified::{RestripeStats, ShardStats};

// Lane metrics (component "sim.lane").
const LANE_UPDATES_SENT: MetricSpec = MetricSpec::new("lane.updates_sent", "sim.lane", "updates");
const LANE_UPDATES_ADMITTED: MetricSpec =
    MetricSpec::new("lane.updates_admitted", "sim.lane", "updates");
const LANE_UPDATES_SHED: MetricSpec = MetricSpec::new("lane.updates_shed", "sim.lane", "updates");
const LANE_ADAPT_US: MetricSpec = MetricSpec::new("lane.adapt_us", "sim.lane", "us");
const LANE_THROTTLE: MetricSpec = MetricSpec::new("lane.throttle", "sim.lane", "fraction");
const GRID_CELLS_VISITED: MetricSpec =
    MetricSpec::new("grid_reduce.cells_visited", "core.grid_reduce", "cells");
const GRID_GAIN_EVALS: MetricSpec =
    MetricSpec::new("grid_reduce.gain_evals", "core.grid_reduce", "evals");
const GRID_HEAP_POPS: MetricSpec =
    MetricSpec::new("grid_reduce.heap_pops", "core.grid_reduce", "pops");
const GRID_REGIONS_EMITTED: MetricSpec =
    MetricSpec::new("grid_reduce.regions_emitted", "core.grid_reduce", "regions");
const GREEDY_STEPS: MetricSpec = MetricSpec::new("greedy.steps", "core.greedy_increment", "steps");
const PLAN_DELTA_M: MetricSpec = MetricSpec::new("plan.delta_m", "core.plan", "m");
const REGION_ADMITTED: MetricSpec = MetricSpec::new("lane.region_admitted", "sim.lane", "updates");
const REGION_SHED: MetricSpec = MetricSpec::new("lane.region_shed", "sim.lane", "updates");
// Utility-policy scores (component "core.utility"): one histogram sample
// per region per adaptation in milli-units (scores are small reals), plus
// the maximum score of the most recent adaptation. Only recorded for
// policies whose `utility_scores()` returns `Some` (the SPICE family).
const UTILITY_SCORE: MetricSpec = MetricSpec::new("utility.score", "core.utility", "milli");
const UTILITY_SCORE_MAX: MetricSpec = MetricSpec::new("utility.score_max", "core.utility", "score");
const CHANNEL_RNG_DRAWS: MetricSpec =
    MetricSpec::new("channel.rng_draws", "server.channel", "draws");
const CHANNEL_TRANSMISSIONS: MetricSpec =
    MetricSpec::new("channel.transmissions", "server.channel", "sends");
const CHANNEL_RETRIES: MetricSpec = MetricSpec::new("channel.retries", "server.channel", "sends");
const CHANNEL_LOST: MetricSpec = MetricSpec::new("channel.lost", "server.channel", "updates");
const CHANNEL_DUPLICATES: MetricSpec =
    MetricSpec::new("channel.duplicates", "server.channel", "updates");

// Per-stripe engine metrics (component "server.sharded", the historical
// name kept for schema stability): end-of-run per-shard accounting,
// recorded once per run for the unified engine at any shard count (one
// entry at shards = 1). One histogram sample per shard; `shard.round_ns`
// is wall clock, hence excluded from the determinism contract like the
// pipeline stage timers.
const SHARD_NODES: MetricSpec = MetricSpec::new("shard.nodes", "server.sharded", "nodes");
const SHARD_ROUND_NS: MetricSpec = MetricSpec::new("shard.round_ns", "server.sharded", "ns");
const SHARD_HANDOFFS: MetricSpec = MetricSpec::new("shard.handoffs", "server.sharded", "nodes");
// Online re-striper accounting (DESIGN.md §15): end-of-run ownership
// imbalance (CoV over per-shard node counts) plus cumulative migration
// counters. `shard.restripe.pause_ns` is wall clock, hence excluded
// from the determinism contract like `shard.round_ns`.
const SHARD_IMBALANCE: MetricSpec =
    MetricSpec::new("shard.imbalance", "server.sharded", "fraction");
const SHARD_RESTRIPE_COUNT: MetricSpec =
    MetricSpec::new("shard.restripe.count", "server.sharded", "migrations");
const SHARD_RESTRIPE_MOVED: MetricSpec =
    MetricSpec::new("shard.restripe.moved_cols", "server.sharded", "columns");
const SHARD_RESTRIPE_PAUSE: MetricSpec =
    MetricSpec::new("shard.restripe.pause_ns", "server.sharded", "ns");

// Adaptive-runner metrics (component "sim.adaptive").
const QUEUE_DEPTH: MetricSpec = MetricSpec::new("queue.depth", "server.queue", "updates");
const QUEUE_OVERFLOW: MetricSpec =
    MetricSpec::new("queue.overflow_drops", "server.queue", "updates");
const QUEUE_LATENCY_US: MetricSpec =
    MetricSpec::new("queue.service_latency_us", "server.queue", "us");
const THROT_LAMBDA: MetricSpec =
    MetricSpec::new("throtloop.lambda", "core.throt_loop", "updates/s");
const THROT_MU: MetricSpec = MetricSpec::new("throtloop.mu", "core.throt_loop", "updates/s");
const THROT_RHO: MetricSpec = MetricSpec::new("throtloop.rho", "core.throt_loop", "fraction");
const THROT_Z: MetricSpec = MetricSpec::new("throtloop.z", "core.throt_loop", "fraction");
const THROT_CLAMPED: MetricSpec =
    MetricSpec::new("throtloop.clamped_steps", "core.throt_loop", "steps");
const THROT_HELD: MetricSpec = MetricSpec::new("throtloop.held_steps", "core.throt_loop", "steps");
const THROT_OVERLOAD: MetricSpec =
    MetricSpec::new("throtloop.overload_steps", "core.throt_loop", "steps");

// Pipeline stage metrics (component "sim.pipeline"). Wall-clock, hence
// nondeterministic across runs — excluded from the determinism contract.
const STAGE_SETUP_US: MetricSpec = MetricSpec::new("pipeline.setup_us", "sim.pipeline", "us");
const STAGE_TRACE_US: MetricSpec = MetricSpec::new("pipeline.trace_us", "sim.pipeline", "us");
const STAGE_REFERENCE_US: MetricSpec =
    MetricSpec::new("pipeline.reference_us", "sim.pipeline", "us");
const STAGE_LANES_US: MetricSpec = MetricSpec::new("pipeline.lanes_us", "sim.pipeline", "us");

/// Shared recorder for [`ShardStats`] slices (lane and adaptive
/// registries expose the same three keys).
fn record_shards(registry: &Telemetry, stats: &[ShardStats]) {
    let nodes = registry.histogram(SHARD_NODES);
    let round_ns = registry.histogram(SHARD_ROUND_NS);
    let handoffs = registry.counter(SHARD_HANDOFFS);
    for s in stats {
        nodes.record(s.nodes as u64);
        round_ns.record(s.round_ns);
        handoffs.add(s.handoffs);
    }
}

/// Shared recorder for [`RestripeStats`] (lane and adaptive registries
/// expose the same four keys).
fn record_restripe(registry: &Telemetry, rs: &RestripeStats) {
    registry.gauge(SHARD_IMBALANCE).set(rs.imbalance);
    registry.counter(SHARD_RESTRIPE_COUNT).add(rs.restripes);
    registry.counter(SHARD_RESTRIPE_MOVED).add(rs.moved_cols);
    registry.counter(SHARD_RESTRIPE_PAUSE).add(rs.pause_ns);
}

/// Journal target for lane-level events.
pub const TARGET_LANE: &str = "sim.lane";
/// Journal target for the closed-loop controller.
pub const TARGET_ADAPTIVE: &str = "sim.adaptive";

/// Pre-registered handles for one policy lane. Creation locks the
/// registry once; every recording after that is lock-free.
pub struct LaneTelemetry {
    registry: Telemetry,
    updates_sent: Arc<Counter>,
    updates_admitted: Arc<Counter>,
    updates_shed: Arc<Counter>,
    adapt_us: Arc<Histogram>,
    throttle: Arc<Gauge>,
    grid_cells_visited: Arc<Counter>,
    grid_gain_evals: Arc<Counter>,
    grid_heap_pops: Arc<Counter>,
    grid_regions_emitted: Arc<Counter>,
    greedy_steps: Arc<Counter>,
    delta_m: Arc<Histogram>,
    region_admitted: Arc<Histogram>,
    region_shed: Arc<Histogram>,
    utility_score: Arc<Histogram>,
    utility_score_max: Arc<Gauge>,
}

impl LaneTelemetry {
    /// Creates the lane's registry; `enabled = false` produces inert
    /// handles (every record is a dropped branch).
    pub fn new(enabled: bool) -> Self {
        let registry = Telemetry::toggled(enabled);
        LaneTelemetry {
            updates_sent: registry.counter(LANE_UPDATES_SENT),
            updates_admitted: registry.counter(LANE_UPDATES_ADMITTED),
            updates_shed: registry.counter(LANE_UPDATES_SHED),
            adapt_us: registry.histogram(LANE_ADAPT_US),
            throttle: registry.gauge(LANE_THROTTLE),
            grid_cells_visited: registry.counter(GRID_CELLS_VISITED),
            grid_gain_evals: registry.counter(GRID_GAIN_EVALS),
            grid_heap_pops: registry.counter(GRID_HEAP_POPS),
            grid_regions_emitted: registry.counter(GRID_REGIONS_EMITTED),
            greedy_steps: registry.counter(GREEDY_STEPS),
            delta_m: registry.histogram(PLAN_DELTA_M),
            region_admitted: registry.histogram(REGION_ADMITTED),
            region_shed: registry.histogram(REGION_SHED),
            utility_score: registry.histogram(UTILITY_SCORE),
            utility_score_max: registry.gauge(UTILITY_SCORE_MAX),
            registry,
        }
    }

    /// A mobile node produced a position update.
    #[inline]
    pub fn on_sent(&self) {
        self.updates_sent.incr();
    }

    /// The server admitted (applied) an update.
    #[inline]
    pub fn on_admitted(&self) {
        self.updates_admitted.incr();
    }

    /// An update was shed at the input (server-actuated drop).
    #[inline]
    pub fn on_shed(&self) {
        self.updates_shed.incr();
    }

    /// Records one adaptation round: wall time, the throttle in force,
    /// the partitioner/optimizer work counters, and the plan's final Δ
    /// distribution (meters, one sample per region).
    pub fn on_adapt(&self, micros: u64, z: f64, cost: Option<AdaptCost>, plan: &SheddingPlan) {
        self.adapt_us.record(micros);
        self.throttle.set(z);
        if let Some(c) = cost {
            self.grid_cells_visited.add(c.partitioner.cells_visited);
            self.grid_gain_evals.add(c.partitioner.gain_evals);
            self.grid_heap_pops.add(c.partitioner.heap_pops);
            self.grid_regions_emitted.add(c.partitioner.regions_emitted);
            self.greedy_steps.add(c.greedy_steps);
        }
        if !self.registry.is_enabled() {
            return; // skip the per-region walk entirely when inert
        }
        for r in plan.regions() {
            self.delta_m.record(r.throttler.round() as u64);
        }
    }

    /// Records one adaptation's per-region utility scores (histogram
    /// sample per region, milli-units) and the maximum score. A no-op
    /// for policies without a utility model (`scores = None`).
    pub fn on_utility(&self, scores: Option<&[f64]>) {
        if !self.registry.is_enabled() {
            return;
        }
        let Some(scores) = scores else { return };
        let mut max = 0.0f64;
        for &s in scores {
            self.utility_score.record((s * 1000.0).round() as u64);
            max = max.max(s);
        }
        self.utility_score_max.set(max);
    }

    /// Flushes one plan epoch's per-region admitted/shed counts into the
    /// shed-skew histograms (one sample per region per epoch).
    pub fn flush_regions(&self, admitted: &[u64], shed: &[u64]) {
        if !self.registry.is_enabled() {
            return;
        }
        for &n in admitted {
            self.region_admitted.record(n);
        }
        for &n in shed {
            self.region_shed.record(n);
        }
    }

    /// Copies the uplink channel's end-of-run accounting into counters.
    pub fn on_channel(&self, stats: &ChannelStats) {
        self.registry
            .counter(CHANNEL_RNG_DRAWS)
            .add(stats.rng_draws);
        self.registry
            .counter(CHANNEL_TRANSMISSIONS)
            .add(stats.transmissions);
        self.registry.counter(CHANNEL_RETRIES).add(stats.retries);
        self.registry.counter(CHANNEL_LOST).add(stats.lost);
        self.registry
            .counter(CHANNEL_DUPLICATES)
            .add(stats.duplicates);
    }

    /// Copies the unified engine's end-of-run per-shard accounting: one
    /// `shard.nodes` / `shard.round_ns` sample per shard (final
    /// ownership, cumulative round wall time) and the total cross-stripe
    /// handoff count.
    pub fn on_shards(&self, stats: &[ShardStats]) {
        if !self.registry.is_enabled() {
            return;
        }
        record_shards(&self.registry, stats);
    }

    /// Copies the online re-striper's end-of-run accounting: final
    /// ownership imbalance (`shard.imbalance`) and the cumulative
    /// `shard.restripe.*` counters.
    pub fn on_restripe(&self, rs: &RestripeStats) {
        if !self.registry.is_enabled() {
            return;
        }
        record_restripe(&self.registry, rs);
    }

    /// Records a journal event stamped with sim time.
    pub fn event(&self, level: Level, sim_time_s: f64, message: String) {
        self.registry.event(level, TARGET_LANE, sim_time_s, message);
    }

    /// Exports the lane's snapshot labelled `component` (conventionally
    /// `"lane:<policy name>"`).
    pub fn snapshot(&self, component: &str) -> TelemetrySnapshot {
        self.registry.snapshot(component)
    }
}

/// Wall-time accounting for the four pipeline stages (setup → trace →
/// reference → lanes). One sample per stage per run.
pub struct PipelineTelemetry {
    registry: Telemetry,
    setup_us: Arc<Histogram>,
    trace_us: Arc<Histogram>,
    reference_us: Arc<Histogram>,
    lanes_us: Arc<Histogram>,
}

impl PipelineTelemetry {
    /// Creates the pipeline's registry.
    pub fn new(enabled: bool) -> Self {
        let registry = Telemetry::toggled(enabled);
        PipelineTelemetry {
            setup_us: registry.histogram(STAGE_SETUP_US),
            trace_us: registry.histogram(STAGE_TRACE_US),
            reference_us: registry.histogram(STAGE_REFERENCE_US),
            lanes_us: registry.histogram(STAGE_LANES_US),
            registry,
        }
    }

    /// Records the setup stage's wall time (microseconds).
    pub fn on_setup(&self, us: u64) {
        self.setup_us.record(us);
    }

    /// Records the trace-recording stage's wall time.
    pub fn on_trace(&self, us: u64) {
        self.trace_us.record(us);
    }

    /// Records the reference-replay stage's wall time.
    pub fn on_reference(&self, us: u64) {
        self.reference_us.record(us);
    }

    /// Records the policy-lane stage's wall time (all lanes).
    pub fn on_lanes(&self, us: u64) {
        self.lanes_us.record(us);
    }

    /// Exports the pipeline's snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot("pipeline")
    }
}

/// Pre-registered handles for the closed-loop adaptive runner.
pub struct AdaptiveTelemetry {
    registry: Telemetry,
    queue_depth: Arc<Gauge>,
    queue_overflow: Arc<Counter>,
    queue_latency_us: Arc<Histogram>,
    lambda: Arc<Gauge>,
    mu: Arc<Gauge>,
    rho: Arc<Gauge>,
    z: Arc<Gauge>,
    clamped: Arc<Counter>,
    held: Arc<Counter>,
    overload: Arc<Counter>,
    /// Last-seen controller totals, for per-window deltas.
    seen: std::cell::Cell<(u64, u64, u64)>,
}

impl AdaptiveTelemetry {
    /// Creates the runner's registry.
    pub fn new(enabled: bool) -> Self {
        let registry = Telemetry::toggled(enabled);
        AdaptiveTelemetry {
            queue_depth: registry.gauge(QUEUE_DEPTH),
            queue_overflow: registry.counter(QUEUE_OVERFLOW),
            queue_latency_us: registry.histogram(QUEUE_LATENCY_US),
            lambda: registry.gauge(THROT_LAMBDA),
            mu: registry.gauge(THROT_MU),
            rho: registry.gauge(THROT_RHO),
            z: registry.gauge(THROT_Z),
            clamped: registry.counter(THROT_CLAMPED),
            held: registry.counter(THROT_HELD),
            overload: registry.counter(THROT_OVERLOAD),
            seen: std::cell::Cell::new((0, 0, 0)),
            registry,
        }
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Records one serviced update's queueing latency (seconds; skipped
    /// for untimed NaN arrivals).
    #[inline]
    pub fn on_serviced(&self, latency_s: f64) {
        if latency_s.is_finite() {
            self.queue_latency_us.record((latency_s * 1e6) as u64);
        }
    }

    /// Records one control window: queue state, the `(λ, μ, ρ, z)`
    /// operating point, and the controller's step classification since
    /// the previous window. Degenerate windows (holds, overload clamps)
    /// produce `Warn` journal entries — the operator-facing signals in
    /// docs/TELEMETRY.md.
    #[allow(clippy::too_many_arguments)]
    pub fn on_window(
        &self,
        time_s: f64,
        queue_len: usize,
        dropped_in_window: u64,
        lambda: f64,
        mu: f64,
        controller: &ThrotLoop,
    ) {
        self.queue_depth.set(queue_len as f64);
        self.queue_overflow.add(dropped_in_window);
        self.lambda.set(lambda);
        self.mu.set(mu);
        self.rho
            .set(if mu > 0.0 { lambda / mu } else { f64::INFINITY });
        self.z.set(controller.throttle());
        let now = (
            controller.clamped_steps(),
            controller.held_steps(),
            controller.overload_steps(),
        );
        let prev = self.seen.replace(now);
        self.clamped.add(now.0 - prev.0);
        self.held.add(now.1 - prev.1);
        self.overload.add(now.2 - prev.2);
        if !self.registry.is_enabled() {
            return;
        }
        if now.2 > prev.2 {
            self.registry.event(
                Level::Warn,
                TARGET_ADAPTIVE,
                time_s,
                format!(
                    "overload window: mu <= 0, z stepped at clamp (z = {:.4})",
                    controller.throttle()
                ),
            );
        } else if now.1 > prev.1 {
            self.registry.event(
                Level::Warn,
                TARGET_ADAPTIVE,
                time_s,
                "degenerate window held: non-finite rate observation".to_string(),
            );
        } else if now.0 > prev.0 {
            self.registry.event(
                Level::Info,
                TARGET_ADAPTIVE,
                time_s,
                format!("step factor clamped (z = {:.4})", controller.throttle()),
            );
        }
        if dropped_in_window > 0 {
            self.registry.event(
                Level::Warn,
                TARGET_ADAPTIVE,
                time_s,
                format!("queue overflow: {dropped_in_window} updates tail-dropped"),
            );
        }
    }

    /// Copies the uplink channel's end-of-run accounting into counters.
    pub fn on_channel(&self, stats: &ChannelStats) {
        self.registry
            .counter(CHANNEL_RNG_DRAWS)
            .add(stats.rng_draws);
        self.registry
            .counter(CHANNEL_TRANSMISSIONS)
            .add(stats.transmissions);
        self.registry.counter(CHANNEL_RETRIES).add(stats.retries);
        self.registry.counter(CHANNEL_LOST).add(stats.lost);
        self.registry
            .counter(CHANNEL_DUPLICATES)
            .add(stats.duplicates);
    }

    /// Copies the shedding server's end-of-run per-shard accounting
    /// (see [`LaneTelemetry::on_shards`]).
    pub fn on_shards(&self, stats: &[ShardStats]) {
        if !self.registry.is_enabled() {
            return;
        }
        record_shards(&self.registry, stats);
    }

    /// Copies the shedding server's online re-striper accounting (see
    /// [`LaneTelemetry::on_restripe`]).
    pub fn on_restripe(&self, rs: &RestripeStats) {
        if !self.registry.is_enabled() {
            return;
        }
        record_restripe(&self.registry, rs);
    }

    /// Exports the runner's snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot("adaptive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lira_core::geometry::Rect;
    use lira_core::grid_reduce::GridReduceStats;

    #[test]
    fn lane_telemetry_records_adapt_cost() {
        let tel = LaneTelemetry::new(true);
        let plan = SheddingPlan::uniform(Rect::from_coords(0.0, 0.0, 100.0, 100.0), 12.0);
        let cost = AdaptCost {
            partitioner: GridReduceStats {
                cells_visited: 10,
                gain_evals: 4,
                heap_pops: 3,
                regions_emitted: 1,
            },
            greedy_steps: 7,
        };
        tel.on_sent();
        tel.on_admitted();
        tel.on_adapt(42, 0.5, Some(cost), &plan);
        let snap = tel.snapshot("lane:test");
        if cfg!(feature = "telemetry-off") || lira_core::telemetry::COMPILED_OUT {
            assert!(!snap.enabled);
            return;
        }
        assert_eq!(snap.counter("lane.updates_sent"), Some(1));
        assert_eq!(snap.counter("grid_reduce.cells_visited"), Some(10));
        assert_eq!(snap.counter("greedy.steps"), Some(7));
        assert_eq!(snap.gauge("lane.throttle"), Some(0.5));
        let deltas = snap.histogram("plan.delta_m").unwrap();
        assert_eq!(deltas.count, 1);
        assert_eq!(deltas.sum, 12);
    }

    #[test]
    fn disabled_lane_telemetry_is_inert() {
        let tel = LaneTelemetry::new(false);
        tel.on_sent();
        tel.flush_regions(&[5, 6], &[1, 0]);
        let snap = tel.snapshot("lane:off");
        assert!(!snap.enabled);
        assert_eq!(snap.counter("lane.updates_sent"), Some(0));
        assert_eq!(snap.histogram("lane.region_admitted").unwrap().count, 0);
    }

    #[test]
    fn adaptive_window_deltas_track_controller() {
        use lira_core::throt_loop::QueueObservation;
        let tel = AdaptiveTelemetry::new(true);
        let mut ctl = ThrotLoop::new(100).unwrap();
        // Overload window: mu = 0 counts as overload + clamp.
        ctl.observe(QueueObservation {
            arrival_rate: 50.0,
            service_rate: 0.0,
        });
        tel.on_window(20.0, 3, 2, 50.0, 0.0, &ctl);
        // Healthy window: no new degenerate steps.
        ctl.observe(QueueObservation {
            arrival_rate: 10.0,
            service_rate: 100.0,
        });
        tel.on_window(40.0, 0, 0, 10.0, 100.0, &ctl);
        let snap = tel.snapshot();
        if cfg!(feature = "telemetry-off") || lira_core::telemetry::COMPILED_OUT {
            assert!(!snap.enabled);
            return;
        }
        assert_eq!(snap.counter("throtloop.overload_steps"), Some(1));
        assert_eq!(snap.counter("queue.overflow_drops"), Some(2));
        assert_eq!(snap.gauge("throtloop.z"), Some(ctl.throttle()));
        assert!(snap
            .events
            .iter()
            .any(|e| e.message.contains("overload window")));
    }
}
