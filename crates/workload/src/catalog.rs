//! The named adversarial scenario catalog (ROADMAP item 5): worlds the
//! paper never tested, each engineered to stress a specific assumption of
//! region-aware load shedding. Every [`NamedScenario`] composes the
//! mobility stack (phased demand, speed classes, dead zones) with the
//! fault layer (regional outages) into a fully deterministic
//! [`Scenario`]; the `exp_scenarios` sweep in `lira-bench` scores every
//! shedding policy on every catalog entry, and docs/SCENARIOS.md is the
//! operator-facing reference.
//!
//! Geometry is expressed in fractions of the scenario's space side and
//! times in fractions of its measured duration, so the same catalog entry
//! scales from the tiny test preset to the paper-scale world without
//! re-tuning.

use lira_core::geometry::{Point, Rect};
use lira_mobility::traffic::Hotspot;
use lira_server::channel::{FaultProfile, Outage, RetryPolicy};

use crate::scenario::{DemandPhase, Scenario, SpeedClass};

/// A named, reproducible adversarial world from the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedScenario {
    /// The paper's own world, unmodified — the control entry every other
    /// scenario is compared against.
    PaperWorld,
    /// A stadium emptying: one extreme hotspot holds the fleet, then the
    /// demand inverts to two far-away suburbs at once and the whole fleet
    /// turns around (sudden hotspot inversion; stale statistics).
    FlashCrowd,
    /// Day/night commute: demand drifts between downtown, a midday
    /// spread, and the evening suburbs over three phases (slowly moving
    /// hotspots; adaptation lag).
    CommuteCycle,
    /// Pedestrian/car/drone speed classes with a per-class `Δ⊣` cap on
    /// the slow class (heterogeneous `Δ` sensitivity; region statistics
    /// mix regimes the plan cannot separate).
    HeterogeneousFleet,
    /// Two dense cities separated by a river dead zone plus a lake — the
    /// space is mostly empty and the network is carved (extreme density
    /// skew; regions spanning the void waste budget).
    TwinCities,
    /// A base-station failure blacks out the central region for part of
    /// the run while background i.i.d. loss continues everywhere
    /// (correlated regional loss; statistics go dark region-wide).
    RegionalBlackout,
}

impl NamedScenario {
    /// Every catalog entry, in presentation order.
    pub const ALL: [NamedScenario; 6] = [
        NamedScenario::PaperWorld,
        NamedScenario::FlashCrowd,
        NamedScenario::CommuteCycle,
        NamedScenario::HeterogeneousFleet,
        NamedScenario::TwinCities,
        NamedScenario::RegionalBlackout,
    ];

    /// Stable kebab-case identifier used in reports and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            NamedScenario::PaperWorld => "paper-world",
            NamedScenario::FlashCrowd => "flash-crowd",
            NamedScenario::CommuteCycle => "commute-cycle",
            NamedScenario::HeterogeneousFleet => "heterogeneous-fleet",
            NamedScenario::TwinCities => "twin-cities",
            NamedScenario::RegionalBlackout => "regional-blackout",
        }
    }

    /// One sentence on what the scenario stresses.
    pub fn stresses(self) -> &'static str {
        match self {
            NamedScenario::PaperWorld => "the paper's baseline regime (control entry)",
            NamedScenario::FlashCrowd => {
                "sudden hotspot inversion: plans adapted to stale statistics"
            }
            NamedScenario::CommuteCycle => {
                "slow demand drift: adaptation lag across day/night phases"
            }
            NamedScenario::HeterogeneousFleet => {
                "mixed speed/Δ-sensitivity classes inside the same regions"
            }
            NamedScenario::TwinCities => "extreme density skew over a carved, mostly-empty space",
            NamedScenario::RegionalBlackout => {
                "correlated regional uplink loss on top of background noise"
            }
        }
    }

    /// The policy the scenario is engineered to hurt most (the expected
    /// victim — see docs/SCENARIOS.md for the reasoning and caveats).
    pub fn expected_victim(self) -> &'static str {
        match self {
            NamedScenario::PaperWorld => "Random Drop",
            NamedScenario::FlashCrowd => "LIRA",
            NamedScenario::CommuteCycle => "LIRA",
            NamedScenario::HeterogeneousFleet => "Uniform Delta",
            NamedScenario::TwinCities => "Lira-Grid",
            NamedScenario::RegionalBlackout => "Random Drop",
        }
    }

    /// Applies the catalog entry to a base scenario, keeping the base's
    /// scale (space, fleet size, durations, seed) and layering the
    /// adversarial structure on top in side/duration fractions.
    pub fn apply(self, mut base: Scenario) -> Scenario {
        let l = base.space_side;
        let warmup = base.warmup_s;
        let dur = base.duration_s;
        let spot = |fx: f64, fy: f64, sigma_frac: f64, weight: f64| Hotspot {
            center: Point::new(fx * l, fy * l),
            sigma: sigma_frac * l,
            weight,
        };
        match self {
            NamedScenario::PaperWorld => {}
            NamedScenario::FlashCrowd => {
                base.phases = vec![
                    // The stadium: one extreme attractor in the NE.
                    DemandPhase {
                        start_s: 0.0,
                        hotspots: vec![spot(0.7, 0.7, 0.06, 12.0)],
                        uniform_weight: 0.2,
                        reroute: false,
                    },
                    // Full-time whistle: everyone leaves for the suburbs
                    // at once, 40% into the measured window.
                    DemandPhase {
                        start_s: warmup + 0.4 * dur,
                        hotspots: vec![spot(0.25, 0.25, 0.08, 6.0), spot(0.2, 0.8, 0.08, 6.0)],
                        uniform_weight: 0.1,
                        reroute: true,
                    },
                ];
            }
            NamedScenario::CommuteCycle => {
                base.phases = vec![
                    // Morning: everything converges downtown.
                    DemandPhase {
                        start_s: 0.0,
                        hotspots: vec![spot(0.5, 0.5, 0.08, 8.0)],
                        uniform_weight: 0.25,
                        reroute: false,
                    },
                    // Midday: demand spreads across secondary centers.
                    DemandPhase {
                        start_s: warmup + dur / 3.0,
                        hotspots: vec![
                            spot(0.5, 0.5, 0.1, 3.0),
                            spot(0.25, 0.7, 0.08, 3.0),
                            spot(0.75, 0.3, 0.08, 3.0),
                        ],
                        uniform_weight: 0.5,
                        reroute: false,
                    },
                    // Evening: the suburbs pull everyone home.
                    DemandPhase {
                        start_s: warmup + 2.0 * dur / 3.0,
                        hotspots: vec![spot(0.15, 0.15, 0.07, 6.0), spot(0.85, 0.85, 0.07, 6.0)],
                        uniform_weight: 0.2,
                        reroute: false,
                    },
                ];
            }
            NamedScenario::HeterogeneousFleet => {
                base.fleet = vec![
                    SpeedClass {
                        name: "pedestrian",
                        fraction: 0.3,
                        speed_scale: 0.12,
                        // Pedestrians drift slowly; past ~0.2·Δ⊣ they stop
                        // reporting at all, so their consumers cap Δ.
                        delta_cap: (0.2 * base.delta_max).max(base.delta_min),
                    },
                    SpeedClass {
                        name: "car",
                        fraction: 0.5,
                        speed_scale: 1.0,
                        delta_cap: f64::INFINITY,
                    },
                    SpeedClass {
                        name: "drone",
                        fraction: 0.2,
                        speed_scale: 2.0,
                        delta_cap: f64::INFINITY,
                    },
                ];
            }
            NamedScenario::TwinCities => {
                // A river bisects most of the space (a corridor survives
                // at the top) and a lake blocks the NE corner.
                base.dead_zones = vec![
                    Rect::from_coords(0.42 * l, 0.05 * l, 0.58 * l, 0.6 * l),
                    Rect::from_coords(0.8 * l, 0.8 * l, 0.95 * l, 0.95 * l),
                ];
                base.phases = vec![DemandPhase {
                    start_s: 0.0,
                    hotspots: vec![spot(0.2, 0.5, 0.07, 8.0), spot(0.8, 0.35, 0.07, 8.0)],
                    uniform_weight: 0.05,
                    reroute: false,
                }];
            }
            NamedScenario::RegionalBlackout => {
                base.phases = vec![DemandPhase {
                    start_s: 0.0,
                    hotspots: vec![spot(0.5, 0.5, 0.1, 8.0)],
                    uniform_weight: 0.3,
                    reroute: false,
                }];
                let mut profile = FaultProfile::iid_loss(0.02);
                // The central base station fails for a quarter of the
                // measured window, taking the hotspot's region with it.
                profile.outages = vec![Outage::regional(
                    warmup + 0.3 * dur,
                    warmup + 0.55 * dur,
                    Rect::from_coords(0.3 * l, 0.3 * l, 0.7 * l, 0.7 * l),
                )];
                profile.retry = RetryPolicy {
                    max_retries: 2,
                    backoff_s: 2.0,
                };
                base = base.with_faults(profile);
            }
        }
        base.validate().expect("catalog scenario validates");
        base
    }

    /// The catalog entry at bench scale: layered over
    /// [`Scenario::small`], which runs a full four-policy comparison in
    /// seconds.
    pub fn scenario(self, seed: u64) -> Scenario {
        self.apply(Scenario::small(seed))
    }

    /// The catalog entry at test scale: a shrunken [`Scenario::small`]
    /// (fewer cars, a one-minute window) for determinism batteries and
    /// golden snapshots.
    pub fn tiny(self, seed: u64) -> Scenario {
        let mut base = Scenario::small(seed);
        base.num_cars = 120;
        base.warmup_s = 20.0;
        base.duration_s = 60.0;
        base.adapt_period_s = 30.0;
        base.query_ratio = 0.05;
        self.apply(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_kebab() {
        let names: Vec<&str> = NamedScenario::ALL.iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), NamedScenario::ALL.len());
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{n} is not kebab-case"
            );
        }
    }

    #[test]
    fn every_entry_validates_at_both_scales() {
        for s in NamedScenario::ALL {
            for sc in [s.scenario(7), s.tiny(7)] {
                sc.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
                sc.lira_config()
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
                if let Some(profile) = &sc.faults {
                    profile
                        .validate()
                        .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
                }
            }
        }
    }

    #[test]
    fn apply_scales_with_the_base() {
        // The same entry layered over different space sizes keeps its
        // geometry proportional.
        let small = NamedScenario::FlashCrowd.apply(Scenario::small(1));
        let paper = NamedScenario::FlashCrowd.apply(Scenario::paper(1));
        let frac = |sc: &Scenario| {
            let h = sc.phases[0].hotspots[0];
            (h.center.x / sc.space_side, h.sigma / sc.space_side)
        };
        let (fs, ss) = frac(&small);
        let (fp, sp) = frac(&paper);
        assert!((fs - fp).abs() < 1e-12);
        assert!((ss - sp).abs() < 1e-12);
        // And the phase switch lands 40% into each measured window.
        let switch_frac = |sc: &Scenario| (sc.phases[1].start_s - sc.warmup_s) / sc.duration_s;
        assert!((switch_frac(&small) - 0.4).abs() < 1e-12);
        assert!((switch_frac(&paper) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn regional_blackout_outage_sits_inside_the_measured_window() {
        let sc = NamedScenario::RegionalBlackout.scenario(3);
        let profile = sc.faults.as_ref().unwrap();
        assert_eq!(profile.outages.len(), 1);
        let o = &profile.outages[0];
        assert!(o.region.is_some(), "the outage must be regional");
        assert!(o.start_s > sc.warmup_s);
        assert!(o.end_s < sc.warmup_s + sc.duration_s);
    }

    #[test]
    fn heterogeneous_fleet_caps_only_pedestrians() {
        let sc = NamedScenario::HeterogeneousFleet.scenario(5);
        let caps = sc.fleet_delta_caps().expect("pedestrian class caps Δ");
        let capped = caps.iter().filter(|c| c.is_finite()).count();
        // 30% of the fleet, striped at the low ids.
        assert_eq!(capped, (0.3 * sc.num_cars as f64).floor() as usize);
        assert!(caps[0] >= sc.delta_min && caps[0] < sc.delta_max);
    }

    #[test]
    fn paper_world_is_the_unmodified_base() {
        let base = Scenario::small(11);
        let sc = NamedScenario::PaperWorld.apply(base.clone());
        assert_eq!(sc, base);
    }
}
