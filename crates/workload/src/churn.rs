//! The shared churning node population the engine benchmarks and the
//! networked load generator replay: a seeded uniform scatter of nodes
//! with random velocities, of which a fixed fraction re-reports (after
//! one reflecting random-walk step) between evaluation rounds.
//! `exp_eval`, `exp_shard`, `exp_serve` and `lira-storm` all drive the
//! same workload so their numbers are comparable points on one perf
//! trajectory.

use lira_core::geometry::Point;
use lira_server::cq_engine::CqServer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the drifting-hotspot population variant
/// ([`ChurnWorkload::with_hotspot`]): a fraction of the fleet confined
/// to a narrow vertical band that sweeps the space — the flash-crowd /
/// commute-drift skew the Lira scenarios produce, concentrated enough
/// to overload a uniform stripe partition.
#[derive(Debug, Clone, Copy)]
pub struct HotspotSpec {
    /// Fraction of the fleet confined to the hot band.
    pub hot_frac: f64,
    /// Band width as a fraction of the space side.
    pub width_frac: f64,
    /// Band drift per round, as a fraction of one full sweep (the band
    /// rides a triangle wave across the space; 0 pins it to the west
    /// edge).
    pub drift_frac: f64,
}

impl Default for HotspotSpec {
    /// 80 % of the fleet in a band a tenth of the space wide, crossing
    /// the space once every 500 rounds.
    fn default() -> Self {
        HotspotSpec {
            hot_frac: 0.8,
            width_frac: 0.1,
            drift_frac: 0.002,
        }
    }
}

/// Hot-band state of the hotspot variant.
struct Hot {
    /// Per hot node (ids `0..base_x.len()`): its fixed x offset within
    /// the band.
    base_x: Vec<f64>,
    width: f64,
    drift: f64,
}

/// A node population plus the walk that re-reports a `churn_frac`
/// fraction of it per round, identically for every consumer — an
/// in-process [`CqServer`] or a wire client batching the reports.
pub struct ChurnWorkload {
    /// Current node positions (also the seed scatter for query
    /// generation, before any [`step`](Self::step)).
    pub positions: Vec<Point>,
    velocities: Vec<(f64, f64)>,
    space_m: f64,
    churn: usize,
    round: usize,
    /// Drifting hot band (the skewed variant); `None` for the classic
    /// uniform population.
    hot: Option<Hot>,
}

impl ChurnWorkload {
    /// A seeded population of `num_nodes` over a `space_m` × `space_m`
    /// square, re-reporting `churn_frac` of the fleet per round.
    pub fn new(num_nodes: usize, seed: u64, churn_frac: f64, space_m: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let positions = (0..num_nodes)
            .map(|_| Point::new(rng.gen_range(0.0..space_m), rng.gen_range(0.0..space_m)))
            .collect();
        let velocities = (0..num_nodes)
            .map(|_| (rng.gen_range(-15.0..15.0), rng.gen_range(-15.0..15.0)))
            .collect();
        ChurnWorkload {
            positions,
            velocities,
            space_m,
            churn: ((num_nodes as f64 * churn_frac) as usize).max(1),
            round: 0,
            hot: None,
        }
    }

    /// The skewed variant of [`new`](Self::new): nodes `0..hot_frac·N`
    /// are squeezed into a vertical band that drifts across the space
    /// (see [`HotspotSpec`]); the rest scatter and walk as usual. Built
    /// on the same seeded draw sequence as `new` with zero extra rng
    /// draws — band offsets are derived by rescaling the already-drawn
    /// x coordinates and the drift is a pure function of the round
    /// counter, so replayed runs stay bit-deterministic.
    pub fn with_hotspot(
        num_nodes: usize,
        seed: u64,
        churn_frac: f64,
        space_m: f64,
        spec: HotspotSpec,
    ) -> Self {
        let mut w = ChurnWorkload::new(num_nodes, seed, churn_frac, space_m);
        let hot_n = ((num_nodes as f64 * spec.hot_frac) as usize).min(num_nodes);
        let width = (spec.width_frac * space_m).clamp(1.0, space_m);
        let base_x: Vec<f64> = w.positions[..hot_n]
            .iter()
            .map(|p| p.x / space_m * width)
            .collect();
        for (i, &bx) in base_x.iter().enumerate() {
            // The band owns a hot node's x outright (x velocity zeroed;
            // y keeps its reflecting walk).
            w.positions[i].x = bx.min(space_m - 1e-6);
            w.velocities[i].0 = 0.0;
        }
        w.hot = Some(Hot {
            base_x,
            width,
            drift: spec.drift_frac,
        });
        w
    }

    /// The hot band's western edge at the *next* step's round counter —
    /// a triangle wave sweeping `[0, space − width]`.
    fn band_shift(&self, hot: &Hot) -> f64 {
        let span = (self.space_m - hot.width).max(0.0);
        let u = (self.round as f64 * hot.drift) % 2.0;
        let tri = if u <= 1.0 { u } else { 2.0 - u };
        tri * span
    }

    /// Number of nodes re-reporting per [`step`](Self::step).
    pub fn churn_per_round(&self) -> usize {
        self.churn
    }

    /// Visits every node once with its initial state (the steady-state
    /// population), in ascending id order.
    pub fn prime_with(&self, mut report: impl FnMut(u32, Point, (f64, f64))) {
        for (i, (&p, &v)) in self.positions.iter().zip(&self.velocities).enumerate() {
            report(i as u32, p, v);
        }
    }

    /// Reports every node once at t = 0 directly into a server.
    pub fn prime(&self, server: &mut CqServer) {
        self.prime_with(|id, p, v| {
            server.ingest(id, 0.0, p, v);
        });
    }

    /// Advances one round: `churn` nodes walk one step (reflecting off
    /// the bounds) and re-report through the callback, in the walk's
    /// deterministic node order.
    pub fn step_with(&mut self, mut report: impl FnMut(u32, Point, (f64, f64))) {
        let n = self.positions.len();
        let start = (self.round * self.churn) % n;
        // Where the hot band sits this round (None for uniform runs).
        let band = self.hot.as_ref().map(|h| {
            let shift = self.band_shift(h);
            (h.base_x.len(), shift)
        });
        let space_m = self.space_m;
        for k in 0..self.churn {
            let i = (start + k) % n;
            let (vx, vy) = &mut self.velocities[i];
            let p = &mut self.positions[i];
            p.x += *vx;
            p.y += *vy;
            if p.x < 0.0 || p.x >= space_m {
                *vx = -*vx;
                p.x = p.x.clamp(0.0, space_m - 1e-6);
            }
            if p.y < 0.0 || p.y >= space_m {
                *vy = -*vy;
                p.y = p.y.clamp(0.0, space_m - 1e-6);
            }
            if let Some((hot_n, shift)) = band {
                if i < hot_n {
                    let bx = self.hot.as_ref().unwrap().base_x[i];
                    self.positions[i].x = (bx + shift).clamp(0.0, space_m - 1e-6);
                }
            }
            let p = self.positions[i];
            let v = self.velocities[i];
            report(i as u32, p, v);
        }
        self.round += 1;
    }

    /// [`step_with`](Self::step_with) ingesting directly into a server.
    /// Reports stay at t = 0 — the store accepts same-time updates, so
    /// occupancy is stationary no matter how many rounds the timing loop
    /// runs.
    pub fn step(&mut self, server: &mut CqServer) {
        self.step_with(|id, p, v| {
            server.ingest(id, 0.0, p, v);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lira_core::geometry::Rect;

    #[test]
    fn workload_is_seed_deterministic_and_stays_in_bounds() {
        let space = 1_000.0;
        let bounds = Rect::from_coords(0.0, 0.0, space, space);
        let mut a = ChurnWorkload::new(200, 7, 0.1, space);
        let mut b = ChurnWorkload::new(200, 7, 0.1, space);
        assert_eq!(a.positions, b.positions);
        let mut sa = CqServer::new(bounds, 200, 8);
        let mut sb = CqServer::new(bounds, 200, 8);
        a.prime(&mut sa);
        b.prime(&mut sb);
        for _ in 0..30 {
            a.step(&mut sa);
            b.step(&mut sb);
            assert_eq!(a.positions, b.positions);
            for p in &a.positions {
                assert!(bounds.contains(p), "{p} escaped");
            }
        }
        // 30 rounds × 20 churned nodes wrap the population index space.
        assert_eq!(sa.store().updates_applied(), sb.store().updates_applied());
    }

    #[test]
    fn callback_replay_matches_direct_ingest() {
        // A wire client capturing reports and replaying them into its own
        // server must land in exactly the state of direct ingest.
        let space = 500.0;
        let bounds = Rect::from_coords(0.0, 0.0, space, space);
        let mut direct = ChurnWorkload::new(64, 3, 0.25, space);
        let mut relayed = ChurnWorkload::new(64, 3, 0.25, space);
        let mut sa = CqServer::new(bounds, 64, 8);
        let mut sb = CqServer::new(bounds, 64, 8);
        direct.prime(&mut sa);
        let mut batch: Vec<(u32, Point, (f64, f64))> = Vec::new();
        relayed.prime_with(|id, p, v| batch.push((id, p, v)));
        for (id, p, v) in batch.drain(..) {
            sb.ingest(id, 0.0, p, v);
        }
        for _ in 0..10 {
            direct.step(&mut sa);
            relayed.step_with(|id, p, v| batch.push((id, p, v)));
            for (id, p, v) in batch.drain(..) {
                sb.ingest(id, 0.0, p, v);
            }
            assert_eq!(direct.positions, relayed.positions);
        }
        assert_eq!(sa.store().updates_applied(), sb.store().updates_applied());
        assert_eq!(sa.evaluate(0.0), sb.evaluate(0.0));
    }

    #[test]
    fn hotspot_workload_is_seed_deterministic() {
        let space = 1_000.0;
        let spec = HotspotSpec::default();
        let mut a = ChurnWorkload::with_hotspot(200, 11, 0.1, space, spec);
        let mut b = ChurnWorkload::with_hotspot(200, 11, 0.1, space, spec);
        assert_eq!(a.positions, b.positions);
        for _ in 0..25 {
            a.step_with(|_, _, _| {});
            b.step_with(|_, _, _| {});
            assert_eq!(a.positions, b.positions);
        }
    }

    #[test]
    fn hot_nodes_ride_the_drifting_band_and_cold_nodes_walk_free() {
        let space = 1_000.0;
        let spec = HotspotSpec {
            hot_frac: 0.5,
            width_frac: 0.1,
            drift_frac: 0.01,
        };
        let n = 100;
        let mut w = ChurnWorkload::with_hotspot(n, 5, 1.0, space, spec);
        let hot_n = n / 2;
        let width = spec.width_frac * space;
        let bounds = Rect::from_coords(0.0, 0.0, space, space);
        for round in 0..120 {
            // Band edge for the step that advances round → round + 1.
            let span = space - width;
            let u = (round as f64 * spec.drift_frac) % 2.0;
            let tri = if u <= 1.0 { u } else { 2.0 - u };
            let shift = tri * span;
            w.step_with(|id, p, _| {
                assert!(bounds.contains(&p), "{p} escaped at round {round}");
                if (id as usize) < hot_n {
                    assert!(
                        p.x >= shift - 1e-9 && p.x <= shift + width + 1e-9,
                        "hot node {id} at x={} outside band [{shift}, {}]",
                        p.x,
                        shift + width
                    );
                }
            });
        }
        // The drift actually moved the band a long way from the origin.
        let far = w.positions[..hot_n].iter().map(|p| p.x).fold(0.0, f64::max);
        assert!(far > width, "band never drifted east: max hot x = {far}");
    }

    #[test]
    fn hotspot_leaves_the_uniform_population_untouched() {
        // Cold nodes (and the whole uniform scatter) come from the same
        // seeded draw sequence as `new`, so the variant changes only the
        // hot ids' x coordinates and x velocities.
        let space = 800.0;
        let spec = HotspotSpec {
            hot_frac: 0.25,
            ..HotspotSpec::default()
        };
        let n = 64;
        let uniform = ChurnWorkload::new(n, 9, 0.2, space);
        let hot = ChurnWorkload::with_hotspot(n, 9, 0.2, space, spec);
        let hot_n = (n as f64 * spec.hot_frac) as usize;
        for i in hot_n..n {
            assert_eq!(uniform.positions[i], hot.positions[i]);
            assert_eq!(uniform.velocities[i], hot.velocities[i]);
        }
        for i in 0..hot_n {
            assert_eq!(uniform.positions[i].y, hot.positions[i].y);
            assert_eq!(hot.velocities[i].0, 0.0);
            assert_eq!(uniform.velocities[i].1, hot.velocities[i].1);
        }
    }
}
