//! The shared churning node population the engine benchmarks and the
//! networked load generator replay: a seeded uniform scatter of nodes
//! with random velocities, of which a fixed fraction re-reports (after
//! one reflecting random-walk step) between evaluation rounds.
//! `exp_eval`, `exp_shard`, `exp_serve` and `lira-storm` all drive the
//! same workload so their numbers are comparable points on one perf
//! trajectory.

use lira_core::geometry::Point;
use lira_server::cq_engine::CqServer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A node population plus the walk that re-reports a `churn_frac`
/// fraction of it per round, identically for every consumer — an
/// in-process [`CqServer`] or a wire client batching the reports.
pub struct ChurnWorkload {
    /// Current node positions (also the seed scatter for query
    /// generation, before any [`step`](Self::step)).
    pub positions: Vec<Point>,
    velocities: Vec<(f64, f64)>,
    space_m: f64,
    churn: usize,
    round: usize,
}

impl ChurnWorkload {
    /// A seeded population of `num_nodes` over a `space_m` × `space_m`
    /// square, re-reporting `churn_frac` of the fleet per round.
    pub fn new(num_nodes: usize, seed: u64, churn_frac: f64, space_m: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let positions = (0..num_nodes)
            .map(|_| Point::new(rng.gen_range(0.0..space_m), rng.gen_range(0.0..space_m)))
            .collect();
        let velocities = (0..num_nodes)
            .map(|_| (rng.gen_range(-15.0..15.0), rng.gen_range(-15.0..15.0)))
            .collect();
        ChurnWorkload {
            positions,
            velocities,
            space_m,
            churn: ((num_nodes as f64 * churn_frac) as usize).max(1),
            round: 0,
        }
    }

    /// Number of nodes re-reporting per [`step`](Self::step).
    pub fn churn_per_round(&self) -> usize {
        self.churn
    }

    /// Visits every node once with its initial state (the steady-state
    /// population), in ascending id order.
    pub fn prime_with(&self, mut report: impl FnMut(u32, Point, (f64, f64))) {
        for (i, (&p, &v)) in self.positions.iter().zip(&self.velocities).enumerate() {
            report(i as u32, p, v);
        }
    }

    /// Reports every node once at t = 0 directly into a server.
    pub fn prime(&self, server: &mut CqServer) {
        self.prime_with(|id, p, v| {
            server.ingest(id, 0.0, p, v);
        });
    }

    /// Advances one round: `churn` nodes walk one step (reflecting off
    /// the bounds) and re-report through the callback, in the walk's
    /// deterministic node order.
    pub fn step_with(&mut self, mut report: impl FnMut(u32, Point, (f64, f64))) {
        let n = self.positions.len();
        let start = (self.round * self.churn) % n;
        for k in 0..self.churn {
            let i = (start + k) % n;
            let (vx, vy) = &mut self.velocities[i];
            let p = &mut self.positions[i];
            p.x += *vx;
            p.y += *vy;
            if p.x < 0.0 || p.x >= self.space_m {
                *vx = -*vx;
                p.x = p.x.clamp(0.0, self.space_m - 1e-6);
            }
            if p.y < 0.0 || p.y >= self.space_m {
                *vy = -*vy;
                p.y = p.y.clamp(0.0, self.space_m - 1e-6);
            }
            report(i as u32, *p, (*vx, *vy));
        }
        self.round += 1;
    }

    /// [`step_with`](Self::step_with) ingesting directly into a server.
    /// Reports stay at t = 0 — the store accepts same-time updates, so
    /// occupancy is stationary no matter how many rounds the timing loop
    /// runs.
    pub fn step(&mut self, server: &mut CqServer) {
        self.step_with(|id, p, v| {
            server.ingest(id, 0.0, p, v);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lira_core::geometry::Rect;

    #[test]
    fn workload_is_seed_deterministic_and_stays_in_bounds() {
        let space = 1_000.0;
        let bounds = Rect::from_coords(0.0, 0.0, space, space);
        let mut a = ChurnWorkload::new(200, 7, 0.1, space);
        let mut b = ChurnWorkload::new(200, 7, 0.1, space);
        assert_eq!(a.positions, b.positions);
        let mut sa = CqServer::new(bounds, 200, 8);
        let mut sb = CqServer::new(bounds, 200, 8);
        a.prime(&mut sa);
        b.prime(&mut sb);
        for _ in 0..30 {
            a.step(&mut sa);
            b.step(&mut sb);
            assert_eq!(a.positions, b.positions);
            for p in &a.positions {
                assert!(bounds.contains(p), "{p} escaped");
            }
        }
        // 30 rounds × 20 churned nodes wrap the population index space.
        assert_eq!(sa.store().updates_applied(), sb.store().updates_applied());
    }

    #[test]
    fn callback_replay_matches_direct_ingest() {
        // A wire client capturing reports and replaying them into its own
        // server must land in exactly the state of direct ingest.
        let space = 500.0;
        let bounds = Rect::from_coords(0.0, 0.0, space, space);
        let mut direct = ChurnWorkload::new(64, 3, 0.25, space);
        let mut relayed = ChurnWorkload::new(64, 3, 0.25, space);
        let mut sa = CqServer::new(bounds, 64, 8);
        let mut sb = CqServer::new(bounds, 64, 8);
        direct.prime(&mut sa);
        let mut batch: Vec<(u32, Point, (f64, f64))> = Vec::new();
        relayed.prime_with(|id, p, v| batch.push((id, p, v)));
        for (id, p, v) in batch.drain(..) {
            sb.ingest(id, 0.0, p, v);
        }
        for _ in 0..10 {
            direct.step(&mut sa);
            relayed.step_with(|id, p, v| batch.push((id, p, v)));
            for (id, p, v) in batch.drain(..) {
                sb.ingest(id, 0.0, p, v);
            }
            assert_eq!(direct.positions, relayed.positions);
        }
        assert_eq!(sa.store().updates_applied(), sb.store().updates_applied());
        assert_eq!(sa.evaluate(0.0), sb.evaluate(0.0));
    }
}
