//! # lira-workload
//!
//! The workload subsystem of the LIRA reproduction:
//!
//! * **Query generators** (Section 4.2): range CQs with side lengths
//!   drawn from `[w/2, w]`, placed by one of three spatial distributions
//!   relative to the mobile-node population — **Proportional** (query
//!   centers follow the node distribution), **Inverse** (they follow its
//!   inverse), and **Random** (uniform).
//! * **Scenarios** ([`scenario`]): the full run configuration (Table 2
//!   presets plus phased demand, heterogeneous fleets, dead zones, and
//!   uplink fault profiles).
//! * **The adversarial catalog** ([`catalog`]): named, deterministic
//!   worlds engineered to stress region-aware shedding — the standing
//!   regression battery behind `exp_scenarios` (see docs/SCENARIOS.md).
//!
//! ```
//! use lira_workload::prelude::*;
//! use lira_core::geometry::{Point, Rect};
//!
//! let bounds = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
//! let nodes = vec![Point::new(100.0, 100.0); 50];
//! let cfg = WorkloadConfig { distribution: QueryDistribution::Proportional, count: 5, side_length: 100.0, seed: 1 };
//! let queries = generate_queries(&bounds, &nodes, &cfg);
//! assert_eq!(queries.len(), 5);
//! ```

#![warn(missing_docs)]

use lira_core::geometry::{Point, Rect};
use lira_server::query::RangeQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod catalog;
pub mod churn;
pub mod scenario;

/// Spatial distribution of query centers (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryDistribution {
    /// Query locations follow the mobile-node distribution.
    Proportional,
    /// Query locations follow the inverse of the node distribution.
    Inverse,
    /// Query locations are uniform over the space.
    Random,
}

impl QueryDistribution {
    /// All three distributions, in the paper's order.
    pub const ALL: [QueryDistribution; 3] = [
        QueryDistribution::Proportional,
        QueryDistribution::Inverse,
        QueryDistribution::Random,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            QueryDistribution::Proportional => "Proportional",
            QueryDistribution::Inverse => "Inverse",
            QueryDistribution::Random => "Random",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Query placement distribution.
    pub distribution: QueryDistribution,
    /// Number of queries `m` (the paper controls it via the `m/n` ratio).
    pub count: usize,
    /// Side-length parameter `w`: sides are drawn from `[w/2, w]` meters.
    pub side_length: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's parameterization: `count = ratio · num_nodes`
    /// (Table 2 default `m/n = 0.01`, `w = 1000`).
    pub fn from_ratio(
        distribution: QueryDistribution,
        num_nodes: usize,
        ratio: f64,
        side_length: f64,
        seed: u64,
    ) -> Self {
        WorkloadConfig {
            distribution,
            count: ((num_nodes as f64 * ratio).round() as usize).max(1),
            side_length,
            seed,
        }
    }
}

/// Side cell count of the density histogram behind the Inverse sampler.
const DENSITY_GRID_SIDE: usize = 32;

/// Generates the query set over `bounds`, using `node_positions` for the
/// Proportional and Inverse placements. Queries are squares clamped to stay
/// inside the bounds without shrinking.
pub fn generate_queries(
    bounds: &Rect,
    node_positions: &[Point],
    cfg: &WorkloadConfig,
) -> Vec<RangeQuery> {
    assert!(cfg.side_length > 0.0, "side length must be positive");
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xa076_1d64_78bd_642f);
    let inverse_sampler = if cfg.distribution == QueryDistribution::Inverse {
        Some(InverseSampler::new(bounds, node_positions))
    } else {
        None
    };

    (0..cfg.count)
        .map(|i| {
            let side = rng.gen_range(cfg.side_length / 2.0..=cfg.side_length);
            let center = match cfg.distribution {
                QueryDistribution::Random => uniform_point(bounds, &mut rng),
                QueryDistribution::Proportional => {
                    if node_positions.is_empty() {
                        uniform_point(bounds, &mut rng)
                    } else {
                        // A random node's position, jittered by up to half a
                        // query side so queries don't all share corners.
                        let p = node_positions[rng.gen_range(0..node_positions.len())];
                        Point::new(
                            p.x + rng.gen_range(-side / 2.0..=side / 2.0),
                            p.y + rng.gen_range(-side / 2.0..=side / 2.0),
                        )
                    }
                }
                QueryDistribution::Inverse => inverse_sampler
                    .as_ref()
                    .expect("sampler built for Inverse")
                    .sample(&mut rng),
            };
            RangeQuery {
                id: i as u32,
                range: Rect::centered_clamped(center, side, side, bounds),
            }
        })
        .collect()
}

/// Samples points with probability inversely proportional to the local
/// node density (computed over a coarse histogram).
struct InverseSampler {
    bounds: Rect,
    cumulative: Vec<f64>,
}

impl InverseSampler {
    fn new(bounds: &Rect, node_positions: &[Point]) -> Self {
        let side = DENSITY_GRID_SIDE;
        let mut counts = vec![0u32; side * side];
        for p in node_positions {
            let col = ((p.x - bounds.min.x) / bounds.width() * side as f64)
                .floor()
                .clamp(0.0, (side - 1) as f64) as usize;
            let row = ((p.y - bounds.min.y) / bounds.height() * side as f64)
                .floor()
                .clamp(0.0, (side - 1) as f64) as usize;
            counts[row * side + col] += 1;
        }
        let mut cumulative = Vec::with_capacity(side * side);
        let mut total = 0.0;
        for &c in &counts {
            total += 1.0 / (1.0 + c as f64);
            cumulative.push(total);
        }
        InverseSampler {
            bounds: *bounds,
            cumulative,
        }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> Point {
        let total = *self.cumulative.last().expect("non-empty histogram");
        let x = rng.gen_range(0.0..total);
        let cell = self.cumulative.partition_point(|&c| c <= x);
        let side = DENSITY_GRID_SIDE;
        let (row, col) = (cell / side, cell % side);
        let cw = self.bounds.width() / side as f64;
        let ch = self.bounds.height() / side as f64;
        Point::new(
            self.bounds.min.x + (col as f64 + rng.gen_range(0.0..1.0)) * cw,
            self.bounds.min.y + (row as f64 + rng.gen_range(0.0..1.0)) * ch,
        )
    }
}

fn uniform_point<R: Rng>(bounds: &Rect, rng: &mut R) -> Point {
    Point::new(
        rng.gen_range(bounds.min.x..bounds.max.x),
        rng.gen_range(bounds.min.y..bounds.max.y),
    )
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::catalog::NamedScenario;
    pub use crate::churn::{ChurnWorkload, HotspotSpec};
    pub use crate::scenario::{DemandPhase, PhaseSchedule, Scenario, SpeedClass};
    pub use crate::{generate_queries, QueryDistribution, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Rect {
        Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0)
    }

    /// Node cluster in the SW corner.
    fn clustered_nodes() -> Vec<Point> {
        (0..500)
            .map(|i| {
                Point::new(
                    100.0 + (i % 25) as f64 * 40.0,
                    100.0 + (i / 25) as f64 * 40.0,
                )
            })
            .collect()
    }

    fn fraction_in_sw(queries: &[RangeQuery]) -> f64 {
        let sw = Rect::from_coords(0.0, 0.0, 2000.0, 2000.0);
        queries
            .iter()
            .filter(|q| sw.contains(&q.range.center()))
            .count() as f64
            / queries.len() as f64
    }

    fn cfg(d: QueryDistribution) -> WorkloadConfig {
        WorkloadConfig {
            distribution: d,
            count: 400,
            side_length: 1000.0,
            seed: 5,
        }
    }

    #[test]
    fn query_count_and_ids() {
        let qs = generate_queries(
            &bounds(),
            &clustered_nodes(),
            &cfg(QueryDistribution::Random),
        );
        assert_eq!(qs.len(), 400);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, i as u32);
        }
    }

    #[test]
    fn sides_in_w_range_and_inside_bounds() {
        for d in QueryDistribution::ALL {
            let qs = generate_queries(&bounds(), &clustered_nodes(), &cfg(d));
            for q in &qs {
                let w = q.range.width();
                let h = q.range.height();
                assert!((500.0..=1000.0).contains(&w), "{d:?}: side {w}");
                assert!((w - h).abs() < 1e-9, "queries are squares");
                assert!(q.range.min.x >= 0.0 && q.range.max.x <= 10_000.0);
                assert!(q.range.min.y >= 0.0 && q.range.max.y <= 10_000.0);
            }
        }
    }

    #[test]
    fn proportional_follows_nodes() {
        let qs = generate_queries(
            &bounds(),
            &clustered_nodes(),
            &cfg(QueryDistribution::Proportional),
        );
        assert!(
            fraction_in_sw(&qs) > 0.9,
            "proportional queries should cluster with the nodes: {}",
            fraction_in_sw(&qs)
        );
    }

    #[test]
    fn inverse_avoids_nodes() {
        let qs = generate_queries(
            &bounds(),
            &clustered_nodes(),
            &cfg(QueryDistribution::Inverse),
        );
        // The SW cluster occupies ~4% of the area; inverse placement should
        // put close to nothing there.
        assert!(
            fraction_in_sw(&qs) < 0.05,
            "inverse queries should avoid the cluster: {}",
            fraction_in_sw(&qs)
        );
    }

    #[test]
    fn random_is_roughly_uniform() {
        let qs = generate_queries(
            &bounds(),
            &clustered_nodes(),
            &cfg(QueryDistribution::Random),
        );
        let f = fraction_in_sw(&qs);
        // SW box is 4% of the area.
        assert!((0.005..0.12).contains(&f), "fraction {f}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_queries(
            &bounds(),
            &clustered_nodes(),
            &cfg(QueryDistribution::Random),
        );
        let b = generate_queries(
            &bounds(),
            &clustered_nodes(),
            &cfg(QueryDistribution::Random),
        );
        assert_eq!(a, b);
        let mut c2 = cfg(QueryDistribution::Random);
        c2.seed = 6;
        let c = generate_queries(&bounds(), &clustered_nodes(), &c2);
        assert_ne!(a, c);
    }

    #[test]
    fn ratio_parameterization() {
        let c = WorkloadConfig::from_ratio(QueryDistribution::Random, 10_000, 0.01, 1000.0, 1);
        assert_eq!(c.count, 100);
        // At least one query even for tiny populations.
        let c = WorkloadConfig::from_ratio(QueryDistribution::Random, 10, 0.01, 1000.0, 1);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn proportional_without_nodes_falls_back_to_random() {
        let qs = generate_queries(&bounds(), &[], &cfg(QueryDistribution::Proportional));
        assert_eq!(qs.len(), 400);
    }

    #[test]
    fn inverse_without_nodes_is_uniform() {
        let qs = generate_queries(&bounds(), &[], &cfg(QueryDistribution::Inverse));
        let f = fraction_in_sw(&qs);
        assert!((0.005..0.12).contains(&f), "fraction {f}");
    }
}
