//! Experiment scenarios: bundled configuration for the end-to-end runs,
//! with presets matching Table 2 of the paper plus the composition hooks
//! the adversarial catalog ([`crate::catalog`]) builds on — phased
//! (time-varying) traffic demand, heterogeneous fleet speed classes with
//! per-class `Δ⊣` caps, and dead zones carved out of the road network.

use lira_core::config::LiraConfig;
use lira_core::error::{LiraError, Result};
use lira_core::geometry::Rect;
use lira_mobility::simulator::TrafficSimulator;
use lira_mobility::traffic::{Hotspot, TrafficDemand};
use lira_server::channel::FaultProfile;

use crate::QueryDistribution;

/// One phase of a time-varying traffic demand: from [`start_s`]
/// (simulation seconds, warmup included) onward, trips are sampled from
/// this phase's hotspot mixture until the next phase begins.
///
/// [`start_s`]: DemandPhase::start_s
#[derive(Debug, Clone, PartialEq)]
pub struct DemandPhase {
    /// When the phase takes effect, in simulation seconds from the very
    /// start of the run (`t = 0`, i.e. including warmup). The first phase
    /// must start at `0` — it is the demand the fleet spawns under.
    pub start_s: f64,
    /// Gaussian attraction centers active during the phase.
    pub hotspots: Vec<Hotspot>,
    /// Weight of the uniform background component.
    pub uniform_weight: f64,
    /// When set, every car abandons its current trip the moment the phase
    /// begins and heads for a fresh destination drawn from the *new*
    /// demand (a flash crowd turning the fleet around at once). When
    /// clear, only future trips follow the new demand (a slow commute
    /// drift). Ignored on the first phase.
    pub reroute: bool,
}

impl DemandPhase {
    /// The demand surface of this phase.
    pub fn demand(&self) -> TrafficDemand {
        TrafficDemand::new(self.hotspots.clone(), self.uniform_weight)
    }
}

/// A speed class within a heterogeneous fleet (pedestrians, cars,
/// drones). Classes partition the fleet by car id in declaration order:
/// with fractions `[0.3, 0.5, 0.2]` over 100 cars, ids `0..30` take the
/// first class, `30..80` the second, and the rest the last.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedClass {
    /// Display name ("pedestrian", "car", "drone").
    pub name: &'static str,
    /// Fraction of the fleet in this class. Fractions must sum to ~1.
    pub fraction: f64,
    /// Multiplicative speed factor on top of each car's personal factor
    /// (pedestrian ≪ 1, drone ≫ 1).
    pub speed_scale: f64,
    /// Per-class cap on the inaccuracy threshold `Δ` (meters): the
    /// simulation clamps every plan threshold for this class's nodes to
    /// `min(Δ, delta_cap)`. Models consumers that cannot tolerate the
    /// full `Δ⊣` (a slow pedestrian drifts little, so a wide threshold
    /// silences it entirely). `f64::INFINITY` leaves the plan unchanged.
    pub delta_cap: f64,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Side of the (square) monitored space, meters.
    pub space_side: f64,
    /// Road-grid spacing, meters.
    pub road_spacing: f64,
    /// Every n-th grid line is an arterial / expressway.
    pub arterial_period: usize,
    /// Every n-th grid line is an expressway.
    pub expressway_period: usize,
    /// Number of traffic hotspots (ignored when [`phases`](Self::phases)
    /// is non-empty).
    pub hotspots: usize,
    /// Number of mobile nodes.
    pub num_cars: usize,

    /// Query placement distribution.
    pub query_distribution: QueryDistribution,
    /// Queries per node, `m/n` (Table 2 default 0.01).
    pub query_ratio: f64,
    /// Query side-length parameter `w`, meters.
    pub query_side: f64,

    /// Number of shedding regions `l`.
    pub num_regions: usize,
    /// Statistics-grid side cell count `α`.
    pub alpha: usize,
    /// Throttle fraction `z`.
    pub throttle: f64,
    /// `Δ⊢`, meters.
    pub delta_min: f64,
    /// `Δ⊣`, meters.
    pub delta_max: f64,
    /// Greedy increment `c_Δ`, meters.
    pub increment: f64,
    /// Fairness threshold `Δ⇔`, meters.
    pub fairness: f64,
    /// Speed-factor extension on/off.
    pub use_speed_factor: bool,
    /// When set, the runner calibrates the update-reduction model `f(Δ)`
    /// empirically from a short trace of the warmed-up traffic instead of
    /// using the analytic default (ablation: Section "empirical vs
    /// analytic f" in DESIGN.md).
    pub calibrate_model: bool,

    /// Traffic warm-up before measurement, seconds.
    pub warmup_s: f64,
    /// Measured duration, seconds.
    pub duration_s: f64,
    /// Simulation tick, seconds.
    pub dt: f64,
    /// Query-evaluation period, seconds.
    pub eval_period_s: f64,
    /// Plan re-adaptation period, seconds.
    pub adapt_period_s: f64,

    /// Time-varying traffic demand. Empty keeps the historical behavior:
    /// one static demand of [`hotspots`](Self::hotspots) random hotspots
    /// derived from the seed. Non-empty replaces it with an explicit
    /// phase schedule (see [`DemandPhase`]); the first phase must start
    /// at `0` and governs fleet spawning.
    pub phases: Vec<DemandPhase>,
    /// Heterogeneous fleet speed classes. Empty is the historical
    /// homogeneous fleet (every car class "car", scale 1, no `Δ` cap).
    pub fleet: Vec<SpeedClass>,
    /// Unbuildable areas removed from the road network (see
    /// [`lira_mobility::generator::NetworkConfig::dead_zones`]).
    pub dead_zones: Vec<Rect>,

    /// Uplink fault model between the dead reckoners and the server's
    /// input queue. `None` is the historical perfect channel (and takes
    /// the exact code path the seed runs always took); `Some` routes
    /// every policy lane's updates through a
    /// [`FaultyChannel`](lira_server::channel::FaultyChannel) seeded from
    /// the lane-RNG rule (`seed + 2000 + lane index`).
    pub faults: Option<FaultProfile>,

    /// Master seed (traffic, queries, and drop decisions derive from it).
    pub seed: u64,
}

impl Default for Scenario {
    /// A medium scenario: ¼ of the paper's area, paper-like parameters,
    /// sized to run a full policy comparison in seconds.
    fn default() -> Self {
        Scenario {
            space_side: 7_071.0, // ~50 km²
            road_spacing: 250.0,
            arterial_period: 4,
            expressway_period: 16,
            hotspots: 5,
            num_cars: 2_000,
            query_distribution: QueryDistribution::Proportional,
            query_ratio: 0.01,
            query_side: 1_000.0,
            num_regions: 100,
            alpha: LiraConfig::alpha_for(100, 10.0),
            throttle: 0.5,
            delta_min: 5.0,
            delta_max: 100.0,
            increment: 1.0,
            fairness: 50.0,
            use_speed_factor: true,
            calibrate_model: false,
            warmup_s: 120.0,
            duration_s: 300.0,
            dt: 1.0,
            eval_period_s: 15.0,
            adapt_period_s: 300.0,
            phases: Vec::new(),
            fleet: Vec::new(),
            dead_zones: Vec::new(),
            faults: None,
            seed: 17,
        }
    }
}

impl Scenario {
    /// A small, fast scenario for unit/integration tests (~2 km², a few
    /// hundred cars, tens of seconds of simulated time).
    pub fn small(seed: u64) -> Self {
        Scenario {
            space_side: 2_000.0,
            road_spacing: 200.0,
            arterial_period: 3,
            expressway_period: 9,
            hotspots: 3,
            num_cars: 250,
            query_ratio: 0.04,
            query_side: 400.0,
            num_regions: 13,
            alpha: 32,
            warmup_s: 30.0,
            duration_s: 120.0,
            eval_period_s: 10.0,
            adapt_period_s: 120.0,
            seed,
            ..Scenario::default()
        }
    }

    /// The paper's full Table 2 setup: ~200 km², `l = 250`, `α = 128`,
    /// 10 000 nodes, one hour of trace.
    pub fn paper(seed: u64) -> Self {
        Scenario {
            space_side: 14_142.0,
            num_cars: 10_000,
            num_regions: 250,
            alpha: 128,
            warmup_s: 300.0,
            duration_s: 3_600.0,
            adapt_period_s: 600.0,
            seed,
            ..Scenario::default()
        }
    }

    /// The monitored space.
    pub fn bounds(&self) -> Rect {
        Rect::from_coords(0.0, 0.0, self.space_side, self.space_side)
    }

    /// The LIRA configuration implied by this scenario.
    pub fn lira_config(&self) -> LiraConfig {
        LiraConfig {
            bounds: self.bounds(),
            num_regions: self.num_regions,
            alpha: self.alpha,
            throttle: self.throttle,
            delta_min: self.delta_min,
            delta_max: self.delta_max,
            increment: self.increment,
            fairness: self.fairness,
            use_speed_factor: self.use_speed_factor,
        }
    }

    /// Sets the number of shedding regions and re-derives `α` with the
    /// paper's `x = 10` rule.
    pub fn with_regions(mut self, l: usize) -> Self {
        self.num_regions = l;
        self.alpha = LiraConfig::alpha_for(l, 10.0);
        self
    }

    /// Routes the uplink through a faulty channel. The profile is
    /// validated here so a bad sweep parameter fails loudly at scenario
    /// construction, not mid-run inside a lane thread.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        profile.validate().expect("valid fault profile");
        self.faults = Some(profile);
        self
    }

    /// The demand surface the fleet spawns under: phase 0 when a phase
    /// schedule is set, the historical seed-derived random hotspots
    /// otherwise.
    pub fn base_demand(&self) -> TrafficDemand {
        match self.phases.first() {
            Some(p) => p.demand(),
            None => TrafficDemand::random_hotspots(&self.bounds(), self.hotspots, self.seed),
        }
    }

    /// The fleet speed class covering car `id`, by cumulative-fraction
    /// stripes over `num_cars`. `None` on a homogeneous fleet.
    pub fn fleet_class_of(&self, id: u32) -> Option<&SpeedClass> {
        if self.fleet.is_empty() {
            return None;
        }
        let n = self.num_cars as f64;
        let mut cum = 0.0;
        for class in &self.fleet {
            cum += class.fraction;
            if (id as f64) < (cum * n).floor() {
                return Some(class);
            }
        }
        // Rounding remainder: the last class absorbs it.
        self.fleet.last()
    }

    /// Per-node speed scale for the whole fleet, or `None` when
    /// homogeneous (so callers can skip the work entirely).
    pub fn fleet_speed_scales(&self) -> Option<Vec<f64>> {
        if self.fleet.is_empty() {
            return None;
        }
        Some(
            (0..self.num_cars as u32)
                .map(|id| self.fleet_class_of(id).map_or(1.0, |c| c.speed_scale))
                .collect(),
        )
    }

    /// Per-node `Δ` caps, or `None` when no class caps anything (the
    /// common case — the per-update `min` is then skipped).
    pub fn fleet_delta_caps(&self) -> Option<Vec<f64>> {
        if self.fleet.iter().all(|c| c.delta_cap.is_infinite()) {
            return None;
        }
        Some(
            (0..self.num_cars as u32)
                .map(|id| {
                    self.fleet_class_of(id)
                        .map_or(f64::INFINITY, |c| c.delta_cap)
                })
                .collect(),
        )
    }

    /// Validates the catalog-facing extensions (phases, fleet, dead
    /// zones). The base parameters are covered by
    /// [`LiraConfig::validate`] via [`Self::lira_config`].
    pub fn validate(&self) -> Result<()> {
        if let Some(first) = self.phases.first() {
            if first.start_s != 0.0 {
                return Err(LiraError::InvalidConfig(format!(
                    "first demand phase must start at 0, got {}",
                    first.start_s
                )));
            }
        }
        for pair in self.phases.windows(2) {
            if pair[1].start_s <= pair[0].start_s {
                return Err(LiraError::InvalidConfig(format!(
                    "demand phases must be strictly ordered: {} then {}",
                    pair[0].start_s, pair[1].start_s
                )));
            }
        }
        for (i, p) in self.phases.iter().enumerate() {
            if !p.start_s.is_finite() || p.start_s < 0.0 {
                return Err(LiraError::InvalidConfig(format!(
                    "phase {i} start {} must be finite and non-negative",
                    p.start_s
                )));
            }
            if p.uniform_weight <= 0.0 && p.hotspots.is_empty() {
                return Err(LiraError::InvalidConfig(format!(
                    "phase {i} has neither hotspots nor uniform background"
                )));
            }
        }
        if !self.fleet.is_empty() {
            let total: f64 = self.fleet.iter().map(|c| c.fraction).sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(LiraError::InvalidConfig(format!(
                    "fleet fractions sum to {total}, expected 1"
                )));
            }
            for c in &self.fleet {
                if !(c.fraction > 0.0 && c.speed_scale > 0.0 && c.speed_scale.is_finite()) {
                    return Err(LiraError::InvalidConfig(format!(
                        "speed class {:?} needs positive fraction and finite positive scale",
                        c.name
                    )));
                }
                if c.delta_cap.is_nan() || c.delta_cap < self.delta_min {
                    return Err(LiraError::InvalidConfig(format!(
                        "speed class {:?} caps Δ at {} below Δ⊢ = {}",
                        c.name, c.delta_cap, self.delta_min
                    )));
                }
            }
        }
        for z in &self.dead_zones {
            let finite = z.min.x.is_finite()
                && z.min.y.is_finite()
                && z.max.x.is_finite()
                && z.max.y.is_finite();
            if !finite || z.width() <= 0.0 || z.height() <= 0.0 {
                return Err(LiraError::InvalidConfig(format!(
                    "dead zone {z:?} must be finite with positive area"
                )));
            }
        }
        Ok(())
    }
}

/// Replays a scenario's [`DemandPhase`] schedule against a running
/// [`TrafficSimulator`]: call [`apply_due`](Self::apply_due) immediately
/// before every `sim.step(dt)` (warmup ticks included) and each phase
/// switches exactly once, at the first tick whose start time has reached
/// the phase's `start_s`. Phase 0 is considered applied at construction
/// (the fleet spawned under it).
#[derive(Debug, Clone)]
pub struct PhaseSchedule {
    pending: Vec<DemandPhase>,
    next: usize,
}

impl PhaseSchedule {
    /// The schedule of `sc`'s phases past the first (empty when the
    /// scenario has no phase schedule at all).
    pub fn new(sc: &Scenario) -> Self {
        PhaseSchedule {
            pending: sc.phases.iter().skip(1).cloned().collect(),
            next: 0,
        }
    }

    /// Applies every phase whose start time has arrived at the
    /// simulator's current clock. Deterministic: demand swaps consume no
    /// RNG draws, and rerouting runs on the simulator's own seeded RNG in
    /// car-id order.
    pub fn apply_due(&mut self, sim: &mut TrafficSimulator) {
        while let Some(phase) = self.pending.get(self.next) {
            if sim.time() + 1e-9 < phase.start_s {
                break;
            }
            sim.set_demand(&phase.demand());
            if phase.reroute {
                sim.reroute_all();
            }
            self.next += 1;
        }
    }

    /// Number of phase switches still pending.
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lira_core::geometry::Point;

    #[test]
    fn presets_validate() {
        for sc in [Scenario::default(), Scenario::small(1), Scenario::paper(1)] {
            sc.lira_config()
                .validate()
                .unwrap_or_else(|e| panic!("{sc:?}: {e}"));
            sc.validate().unwrap_or_else(|e| panic!("{sc:?}: {e}"));
            assert!(sc.warmup_s >= 0.0 && sc.duration_s > 0.0);
            assert!(sc.num_cars > 0);
        }
    }

    #[test]
    fn paper_preset_matches_table2() {
        let sc = Scenario::paper(0);
        assert_eq!(sc.num_regions, 250);
        assert_eq!(sc.alpha, 128);
        assert_eq!(sc.throttle, 0.5);
        assert_eq!(sc.delta_min, 5.0);
        assert_eq!(sc.delta_max, 100.0);
        assert_eq!(sc.increment, 1.0);
        assert_eq!(sc.fairness, 50.0);
        assert_eq!(sc.query_ratio, 0.01);
        assert_eq!(sc.query_side, 1000.0);
        assert_eq!(sc.duration_s, 3600.0);
        // ~200 km².
        assert!((sc.space_side * sc.space_side / 1e6 - 200.0).abs() < 1.0);
    }

    #[test]
    fn with_regions_rederives_alpha() {
        let sc = Scenario::default().with_regions(250);
        assert_eq!(sc.alpha, 128);
        let sc = Scenario::default().with_regions(4000);
        assert_eq!(sc.alpha, 512);
    }

    fn one_phase(start_s: f64) -> DemandPhase {
        DemandPhase {
            start_s,
            hotspots: vec![Hotspot {
                center: Point::new(500.0, 500.0),
                sigma: 100.0,
                weight: 5.0,
            }],
            uniform_weight: 0.2,
            reroute: false,
        }
    }

    #[test]
    fn validate_rejects_bad_phase_schedules() {
        let mut sc = Scenario::small(1);
        sc.phases = vec![one_phase(10.0)];
        assert!(sc.validate().is_err(), "first phase must start at 0");
        sc.phases = vec![one_phase(0.0), one_phase(50.0), one_phase(50.0)];
        assert!(sc.validate().is_err(), "phases must be strictly ordered");
        sc.phases = vec![one_phase(0.0), one_phase(50.0)];
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_fleets() {
        let mut sc = Scenario::small(1);
        sc.fleet = vec![SpeedClass {
            name: "half",
            fraction: 0.5,
            speed_scale: 1.0,
            delta_cap: f64::INFINITY,
        }];
        assert!(sc.validate().is_err(), "fractions must sum to 1");
        sc.fleet = vec![SpeedClass {
            name: "capped-too-low",
            fraction: 1.0,
            speed_scale: 1.0,
            delta_cap: 1.0, // below Δ⊢ = 5
        }];
        assert!(sc.validate().is_err(), "caps below Δ⊢ are rejected");
        sc.fleet = vec![SpeedClass {
            name: "ok",
            fraction: 1.0,
            speed_scale: 1.0,
            delta_cap: 20.0,
        }];
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_dead_zones() {
        let mut sc = Scenario::small(1);
        sc.dead_zones = vec![Rect::from_coords(10.0, 10.0, 10.0, 50.0)];
        assert!(sc.validate().is_err());
        sc.dead_zones = vec![Rect::from_coords(10.0, 10.0, 200.0, 200.0)];
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn fleet_stripes_partition_by_cumulative_fraction() {
        let mut sc = Scenario::small(1);
        sc.num_cars = 100;
        sc.fleet = vec![
            SpeedClass {
                name: "pedestrian",
                fraction: 0.3,
                speed_scale: 0.12,
                delta_cap: 20.0,
            },
            SpeedClass {
                name: "car",
                fraction: 0.5,
                speed_scale: 1.0,
                delta_cap: f64::INFINITY,
            },
            SpeedClass {
                name: "drone",
                fraction: 0.2,
                speed_scale: 2.0,
                delta_cap: f64::INFINITY,
            },
        ];
        sc.validate().unwrap();
        assert_eq!(sc.fleet_class_of(0).unwrap().name, "pedestrian");
        assert_eq!(sc.fleet_class_of(29).unwrap().name, "pedestrian");
        assert_eq!(sc.fleet_class_of(30).unwrap().name, "car");
        assert_eq!(sc.fleet_class_of(79).unwrap().name, "car");
        assert_eq!(sc.fleet_class_of(80).unwrap().name, "drone");
        assert_eq!(sc.fleet_class_of(99).unwrap().name, "drone");
        let scales = sc.fleet_speed_scales().unwrap();
        assert_eq!(scales.len(), 100);
        assert_eq!(scales[0], 0.12);
        assert_eq!(scales[50], 1.0);
        assert_eq!(scales[99], 2.0);
        let caps = sc.fleet_delta_caps().unwrap();
        assert_eq!(caps[0], 20.0);
        assert!(caps[50].is_infinite());
    }

    #[test]
    fn uncapped_fleet_yields_no_cap_vector() {
        let mut sc = Scenario::small(1);
        sc.fleet = vec![SpeedClass {
            name: "car",
            fraction: 1.0,
            speed_scale: 1.0,
            delta_cap: f64::INFINITY,
        }];
        assert!(sc.fleet_delta_caps().is_none());
        assert!(sc.fleet_speed_scales().is_some());
    }

    #[test]
    fn base_demand_prefers_phase_zero() {
        let mut sc = Scenario::small(1);
        let unphased = sc.base_demand();
        assert_eq!(unphased.hotspots().len(), sc.hotspots);
        sc.phases = vec![one_phase(0.0)];
        let phased = sc.base_demand();
        assert_eq!(phased.hotspots().len(), 1);
        assert_eq!(phased.hotspots()[0].center, Point::new(500.0, 500.0));
    }

    #[test]
    fn phase_schedule_switches_once_at_the_right_tick() {
        use lira_mobility::generator::{generate_network, NetworkConfig};
        use lira_mobility::simulator::TrafficConfig;
        let mut sc = Scenario::small(4);
        sc.phases = vec![one_phase(0.0), {
            let mut p = one_phase(10.0);
            p.reroute = true;
            p
        }];
        let net = generate_network(&NetworkConfig::small(4));
        let mut sim = TrafficSimulator::new(
            net,
            &sc.base_demand(),
            TrafficConfig {
                num_cars: 20,
                seed: 4,
            },
        );
        let mut schedule = PhaseSchedule::new(&sc);
        assert_eq!(schedule.remaining(), 1);
        for _ in 0..9 {
            schedule.apply_due(&mut sim);
            sim.step(1.0);
        }
        assert_eq!(schedule.remaining(), 1, "not due until t = 10");
        schedule.apply_due(&mut sim); // sim.time() == 9 → still not due
        assert_eq!(schedule.remaining(), 1);
        sim.step(1.0); // t = 10
        schedule.apply_due(&mut sim);
        assert_eq!(schedule.remaining(), 0, "switched exactly at t = 10");
    }
}
