//! City broadcast: the base-station layer end to end (Sections 2.2, 4.3.2).
//!
//! Computes a LIRA plan for a city, places base stations density-dependently
//! (small cells downtown, large cells in the suburbs), broadcasts each
//! station's region subset, installs it on mobile nodes with the tiny 5×5
//! on-device index, and verifies node-local throttler lookups against the
//! server's plan. Prints the per-station broadcast cost that the paper
//! compares against a single UDP packet.
//!
//! Run with: `cargo run --release --example city_broadcast`

use lira::prelude::*;

fn main() -> Result<()> {
    let net_cfg = NetworkConfig::small(23);
    let bounds = net_cfg.bounds;
    let network = generate_network(&net_cfg);
    let demand = TrafficDemand::random_hotspots(&bounds, 4, 23);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: 800,
            seed: 23,
        },
    );
    for _ in 0..90 {
        sim.step(1.0);
    }

    // Plan a 49-region shedding layout at z = 0.5.
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(49);
    let positions: Vec<Point> = sim.cars().iter().map(|c| c.position()).collect();
    let queries = generate_queries(
        &bounds,
        &positions,
        &WorkloadConfig::from_ratio(QueryDistribution::Proportional, 800, 0.01, 400.0, 23),
    );
    let mut grid = StatsGrid::new(config.alpha, bounds)?;
    grid.begin_snapshot();
    for car in sim.cars() {
        grid.observe_node(&car.position(), car.speed(), 1.0);
    }
    for q in &queries {
        grid.observe_query(&q.range);
    }
    grid.commit_snapshot();
    let shedder = LiraShedder::new(config.clone(), 1000)?;
    let plan = shedder.adapt_with_throttle(&grid, 0.5)?.plan;
    println!(
        "plan: {} regions, {} bytes total",
        plan.len(),
        plan.encode().len()
    );

    // Density-dependent base stations: ≤ 120 nodes per station.
    let stations = density_dependent_placement(&bounds, &positions, 120, 200.0);
    println!(
        "\nplaced {} base stations (density-dependent)",
        stations.len()
    );
    println!(
        "mean regions per station: {:.1} | mean broadcast: {:.0} bytes (UDP payload limit 1472)",
        mean_regions_per_station(&stations, &plan),
        mean_broadcast_bytes(&stations, &plan),
    );

    // Broadcast: every station encodes its subset; nodes install it.
    let mut mismatches = 0usize;
    let mut total_installed = 0usize;
    for (i, car) in sim.cars().iter().enumerate().take(200) {
        let pos = car.position();
        let sid = station_for(&stations, &pos).expect("stations placed");
        let subset = plan.subset_for(&stations[sid as usize].coverage);
        // Wire round-trip: encode at the station, decode on the device.
        let payload: Vec<u8> = SheddingPlan::new(bounds, subset, config.delta_min).encode();
        let received = SheddingPlan::decode(bounds, &payload, config.delta_min)?;
        let node = MobileShedder::install(i as u32, received.regions().to_vec(), config.delta_min);
        total_installed += node.num_regions();

        // The node's local lookup must agree with the server's plan
        // (up to the f32 wire quantization at region borders).
        let local = node.throttler_at(&pos);
        let server = plan.throttler_at(&pos);
        if (local - server).abs() > 1e-3 {
            mismatches += 1;
        }
    }
    println!(
        "installed plans on 200 nodes: avg {:.1} regions/node, {} lookup mismatches",
        total_installed as f64 / 200.0,
        mismatches
    );
    assert!(mismatches <= 2, "node-local lookups diverged from the plan");
    println!("\nnode-local throttler lookups match the server's plan ✓");
    Ok(())
}
