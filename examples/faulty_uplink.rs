//! Faulty uplink: the fault-injection channel end to end.
//!
//! Runs the policy comparison over a bursty, lossy, reordering uplink
//! (Gilbert–Elliott loss + bounded delay + retries), then drives the
//! closed THROTLOOP through a 30-second total outage and shows the
//! throttle recovering afterwards. Everything is deterministic: same
//! seed, same faults, same report, bit for bit.
//!
//! Run with: `cargo run --release --example faulty_uplink`

use lira::prelude::*;

fn main() {
    // A bursty mobile channel: mostly-good Gilbert–Elliott loss with bad
    // spells, up to 2 s of delivery jitter (reordering), occasional
    // duplicates, and a 2-shot retry budget with 1 s backoff.
    let stormy = FaultProfile {
        loss: LossModel::GilbertElliott {
            p_g2b: 0.05,
            p_b2g: 0.3,
            loss_good: 0.02,
            loss_bad: 0.8,
        },
        delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 2.0,
        },
        duplicate_prob: 0.02,
        outages: Vec::new(),
        retry: RetryPolicy {
            max_retries: 2,
            backoff_s: 1.0,
        },
    };

    let mut sc = Scenario::small(42);
    sc.num_cars = 300;
    sc.duration_s = 90.0;

    println!("policy comparison over the stormy channel:");
    let faulty = run_scenario(&sc.clone().with_faults(stormy.clone()), &Policy::ALL);
    let clean = run_scenario(&sc.clone(), &Policy::ALL);
    for (f, c) in faulty.outcomes.iter().zip(&clean.outcomes) {
        println!(
            "  {:>13}: E^C {:.4} (clean {:.4}) | delivered {}/{} sends, {} retries, {} lost",
            f.policy.name(),
            f.metrics.mean_containment,
            c.metrics.mean_containment,
            f.faults.delivered,
            f.faults.sent,
            f.faults.retries,
            f.faults.lost,
        );
    }

    // The closed loop through a total outage, with capacity tight enough
    // (30 upd/s vs ~75/s offered) that the throttle is genuinely active:
    // nothing arrives in t = [40, 70), THROTLOOP sees empty windows and
    // relaxes z (never NaN, never 0), then re-converges to the capacity
    // once the channel returns.
    let mut outage = FaultProfile::none();
    outage.outages.push(Outage::window(40.0, 70.0));
    let mut sc = Scenario::small(42);
    sc.num_cars = 300;
    sc.duration_s = 160.0;
    sc = sc.with_faults(outage);
    let report = run_adaptive(
        &sc,
        &AdaptiveConfig {
            service_rate: 30.0,
            queue_capacity: 200,
            control_period_s: 10.0,
        },
    );
    println!();
    println!("closed loop through a 30 s outage (z per 10 s control window):");
    for w in &report.windows {
        let phase = if (40.0..70.0).contains(&(w.time - 10.0)) {
            "outage"
        } else {
            ""
        };
        println!(
            "  t = {:>5.0} s | λ = {:>6.1}/s | z = {:.3} {}",
            w.time, w.arrival_rate, w.throttle, phase
        );
    }
    println!(
        "final throttle {:.3}; {} of {} sends delivered, {} lost to the outage window",
        report.final_throttle, report.faults.delivered, report.faults.sent, report.faults.lost
    );
}
