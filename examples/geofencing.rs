//! Geofencing with honest uncertainty: three-valued query results on top
//! of LIRA shedding, served from a TPR-tree index.
//!
//! A security perimeter (geofence) must alert when vehicles are inside.
//! Under load shedding the server only knows positions to within each
//! region's throttler Δ, so a boolean answer would lie at the fence line.
//! `evaluate_uncertain` splits the answer into *must* (provably inside)
//! and *maybe* (within Δ of the fence) — and the example verifies both
//! guarantees against the simulation's true positions.
//!
//! Run with: `cargo run --release --example geofencing`

use lira::prelude::*;

fn main() -> Result<()> {
    let net_cfg = NetworkConfig::small(31);
    let bounds = net_cfg.bounds;
    let network = generate_network(&net_cfg);
    let demand = TrafficDemand::random_hotspots(&bounds, 3, 31);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: 300,
            seed: 31,
        },
    );
    for _ in 0..60 {
        sim.step(1.0);
    }

    // Shed at z = 0.4 with a LIRA plan.
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(25);
    let mut grid = StatsGrid::new(config.alpha, bounds)?;
    grid.begin_snapshot();
    for car in sim.cars() {
        grid.observe_node(&car.position(), car.speed(), 1.0);
    }
    let fence = Rect::from_coords(700.0, 700.0, 1400.0, 1400.0);
    grid.observe_query(&fence);
    grid.commit_snapshot();
    let shedder = LiraShedder::new(config.clone(), 1000)?;
    let plan = shedder.adapt_with_throttle(&grid, 0.4)?.plan;

    // The CQ server runs on the TPR-tree (time-parameterized) index: no
    // per-evaluation refresh needed.
    let mut server = CqServer::with_index(bounds, 300, TprTree::new(60.0));
    server.register_query(RangeQuery {
        id: 0,
        range: fence,
    });
    let mut reckoners = vec![DeadReckoner::new(); 300];

    println!(
        "geofence {fence} | z = 0.4 | {} shedding regions",
        plan.len()
    );
    println!("\n  time | must | maybe | true inside | guarantee check");
    println!("-------+------+-------+-------------+----------------");
    let mut updates = 0u64;
    for tick in 1..=240u64 {
        sim.step(1.0);
        let t = sim.time();
        for (i, car) in sim.cars().iter().enumerate() {
            let delta = plan.throttler_at(&car.position());
            if let Some(rep) =
                reckoners[i].observe(i as u32, t, car.position(), car.velocity(), delta)
            {
                server.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
                updates += 1;
            }
        }
        if tick % 30 != 0 {
            continue;
        }
        let result = &server.evaluate_uncertain(t, config.delta_max, |_, p| {
            plan.max_throttler_within(&p, config.delta_max)
        })[0];
        let truly_inside: Vec<u32> = sim
            .cars()
            .iter()
            .enumerate()
            .filter(|(_, c)| fence.contains(&c.position()))
            .map(|(i, _)| i as u32)
            .collect();
        // Guarantee 1: every `must` node is truly inside.
        let must_ok = result.must.iter().all(|n| {
            fence
                .expand(1e-6)
                .contains_closed(&sim.cars()[*n as usize].position())
        });
        // Guarantee 2: every truly-inside node is in must ∪ maybe.
        let recall_ok = truly_inside
            .iter()
            .all(|n| result.must.binary_search(n).is_ok() || result.maybe.binary_search(n).is_ok());
        println!(
            "{:>5.0}s | {:>4} | {:>5} | {:>11} | {}",
            t,
            result.must.len(),
            result.maybe.len(),
            truly_inside.len(),
            if must_ok && recall_ok {
                "✓ sound + complete"
            } else {
                "✗ VIOLATED"
            }
        );
        assert!(must_ok, "a must-node was outside the fence");
        assert!(recall_ok, "a vehicle inside the fence was missed");
    }
    println!("\nprocessed {updates} updates; every alert was provably correct and no");
    println!("intruder was missed — the maybe-set is exactly the honest gray zone");
    println!("that load shedding created.");
    Ok(())
}
