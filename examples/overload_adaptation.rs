//! Overload adaptation: THROTLOOP closing the loop (Section 3.4).
//!
//! The CQ server's update queue has finite capacity and a fixed service
//! rate. A traffic surge doubles the fleet mid-run; THROTLOOP observes the
//! queue's arrival/service rates every adaptation window, recomputes the
//! throttle fraction z, and LIRA re-plans the shedding regions so the
//! queue never clogs. The example prints a timeline of λ, z, and drops.
//!
//! Run with: `cargo run --release --example overload_adaptation`

use lira::prelude::*;

/// Updates/second the server can process.
const SERVICE_RATE: f64 = 120.0;
/// Input queue capacity B.
const QUEUE_CAPACITY: usize = 500;
/// Seconds per THROTLOOP adaptation window.
const WINDOW_S: f64 = 20.0;

fn main() -> Result<()> {
    let net_cfg = NetworkConfig::small(11);
    let bounds = net_cfg.bounds;
    let network = generate_network(&net_cfg);
    let demand = TrafficDemand::random_hotspots(&bounds, 3, 11);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: 600,
            seed: 11,
        },
    );

    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(25);
    let mut shedder = LiraShedder::new(config.clone(), QUEUE_CAPACITY)?;

    let mut grid = StatsGrid::new(config.alpha, bounds)?;
    let mut queue: UpdateQueue<MotionReport> = UpdateQueue::new(QUEUE_CAPACITY);
    let mut reckoners = vec![DeadReckoner::new(); sim.cars().len()];
    let mut plan = SheddingPlan::uniform(bounds, config.delta_min);

    println!("service capacity: {SERVICE_RATE} upd/s | queue B = {QUEUE_CAPACITY}");
    println!("\n  time |  cars |  λ (upd/s) |     z | queue | dropped");
    println!("-------+-------+------------+-------+-------+--------");

    let mut dropped_before = 0u64;
    for window in 0..12 {
        // A traffic surge: the fleet grows by 50% at t = 80 s and again at
        // t = 160 s (modeled by shrinking every node's threshold budget —
        // we scale λ by replaying updates multiple times).
        let surge_factor: usize = match window {
            0..=3 => 1,
            4..=7 => 2,
            _ => 3,
        };

        for _ in 0..WINDOW_S as usize {
            sim.step(1.0);
            let t = sim.time();
            for (i, car) in sim.cars().iter().enumerate() {
                let delta = plan.throttler_at(&car.position());
                if let Some(rep) =
                    reckoners[i].observe(i as u32, t, car.position(), car.velocity(), delta)
                {
                    // The surge: each physical update stands for
                    // `surge_factor` nodes' worth of load.
                    for _ in 0..surge_factor {
                        queue.offer(rep);
                    }
                }
            }
            // The server drains at its fixed service rate.
            queue.service(SERVICE_RATE as usize);
        }

        // End of window: THROTLOOP observes and LIRA re-plans.
        let obs = queue.window_observation(WINDOW_S, SERVICE_RATE);
        grid.begin_snapshot();
        for car in sim.cars() {
            grid.observe_node(&car.position(), car.speed(), surge_factor as f64);
        }
        grid.commit_snapshot();
        let adaptation = shedder.adapt(&grid, obs)?;
        plan = adaptation.plan;

        let dropped_now = queue.dropped() - dropped_before;
        dropped_before = queue.dropped();
        println!(
            "{:>5.0}s | {:>5} | {:>10.1} | {:>5.3} | {:>5} | {:>7}",
            sim.time(),
            sim.cars().len() * surge_factor,
            obs.arrival_rate,
            adaptation.throttle,
            queue.len(),
            dropped_now,
        );
    }

    println!(
        "\nTHROTLOOP settled at z = {:.3}; total drops {} of {} arrivals ({:.2}%).",
        shedder.throttle(),
        queue.dropped(),
        queue.arrived(),
        100.0 * queue.drop_fraction()
    );
    println!("Each surge causes one burst of drops; the controller then cuts z until the");
    println!("source-side budget absorbs the load and the queue stops overflowing.");
    Ok(())
}
