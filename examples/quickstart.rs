//! Quickstart: one LIRA adaptation step from scratch.
//!
//! Builds a small synthetic city, observes its traffic into the statistics
//! grid, runs GRIDREDUCE + GREEDYINCREMENT at a 50% update budget, and
//! prints the resulting shedding regions with their update throttlers.
//!
//! Run with: `cargo run --release --example quickstart`

use lira::prelude::*;

fn main() -> Result<()> {
    // 1. A ~2 km² synthetic city with 3 traffic hotspots and 400 cars.
    let net_cfg = NetworkConfig::small(42);
    let bounds = net_cfg.bounds;
    let network = generate_network(&net_cfg);
    let demand = TrafficDemand::random_hotspots(&bounds, 3, 42);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: 400,
            seed: 42,
        },
    );
    println!(
        "city: {:.1} km² | {} intersections | {} cars",
        bounds.area() / 1e6,
        sim.network().num_nodes(),
        sim.cars().len()
    );

    // Let traffic flow for two simulated minutes.
    for _ in 0..120 {
        sim.step(1.0);
    }

    // 2. A range-CQ workload following the node distribution (m/n = 0.02).
    let positions: Vec<Point> = sim.cars().iter().map(|c| c.position()).collect();
    let queries = generate_queries(
        &bounds,
        &positions,
        &WorkloadConfig::from_ratio(QueryDistribution::Proportional, 400, 0.02, 300.0, 42),
    );
    println!("queries: {} range CQs", queries.len());

    // 3. Feed the statistics grid — LIRA's only data structure.
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(25); // l = 25 shedding regions (25 mod 3 = 1)
    let mut grid = StatsGrid::new(config.alpha, bounds)?;
    grid.begin_snapshot();
    for car in sim.cars() {
        grid.observe_node(&car.position(), car.speed(), 1.0);
    }
    for q in &queries {
        grid.observe_query(&q.range);
    }
    grid.commit_snapshot();

    // 4. One adaptation step at throttle fraction z = 0.5: keep only half
    //    of the position updates, placed where they hurt accuracy least.
    let shedder = LiraShedder::new(config.clone(), 1000)?;
    let adaptation = shedder.adapt_with_throttle(&grid, 0.5)?;

    println!(
        "\nadaptation took {:?} | budget met: {} | objective Σ mᵢ·Δᵢ = {:.1}",
        adaptation.elapsed, adaptation.solution.budget_met, adaptation.solution.inaccuracy
    );
    println!("\n  # |        region (m)        |  side |  nodes | queries | Δ (m)");
    println!("----+--------------------------+-------+--------+---------+------");
    for (i, (region, stats)) in adaptation
        .plan
        .regions()
        .iter()
        .zip(&adaptation.partitioning.regions)
        .enumerate()
    {
        println!(
            "{:>3} | ({:>6.0},{:>6.0})-({:>6.0},{:>6.0}) | {:>5.0} | {:>6.1} | {:>7.2} | {:>5.1}",
            i,
            region.area.min.x,
            region.area.min.y,
            region.area.max.x,
            region.area.max.y,
            region.area.width(),
            stats.nodes,
            stats.queries,
            region.throttler,
        );
    }

    // 5. What a mobile node does with the plan: a local throttler lookup.
    let me = sim.cars()[0].position();
    println!(
        "\na node at {me} uses inaccuracy threshold Δ = {:.1} m",
        adaptation.plan.throttler_at(&me)
    );
    println!(
        "broadcast size for the full plan: {} bytes ({} regions × 16 B)",
        adaptation.plan.encode().len(),
        adaptation.plan.len()
    );
    Ok(())
}
