//! Ride-finder: the paper's motivating scenario (Google Ride Finder-style
//! taxi monitoring) as a full end-to-end comparison.
//!
//! A fleet of taxis roams a synthetic city while users run continual range
//! queries ("taxis near me"). The CQ server cannot afford the full update
//! stream, so it sheds half of it — once by dropping random updates at the
//! server (what an overloaded system does naturally) and once with LIRA's
//! region-aware source throttling. The example prints the side-by-side
//! accuracy of the two, plus the Uniform Δ middle ground.
//!
//! Run with: `cargo run --release --example ride_finder`

use lira::prelude::*;

fn main() {
    let mut scenario = Scenario::small(7);
    scenario.num_cars = 500; // taxis
    scenario.query_ratio = 0.03; // ~15 riders watching
    scenario.query_side = 500.0; // "within a few blocks"
    scenario.throttle = 0.5; // server can take half the update load
    scenario.duration_s = 180.0;

    println!(
        "ride-finder: {} taxis, ~{} rider queries, budget z = {}",
        scenario.num_cars,
        (scenario.num_cars as f64 * scenario.query_ratio) as usize,
        scenario.throttle
    );
    println!("simulating {} s of city traffic...\n", scenario.duration_s);

    let policies = [Policy::Lira, Policy::UniformDelta, Policy::RandomDrop];
    let report = run_scenario(&scenario, &policies);

    println!(
        "reference server (Δ = Δ⊢ everywhere) processed {} updates",
        report.reference_updates
    );
    println!("\npolicy         | containment err | position err (m) | updates sent | processed");
    println!("---------------+-----------------+------------------+--------------+----------");
    for outcome in &report.outcomes {
        println!(
            "{:<14} | {:>15.4} | {:>16.2} | {:>12} | {:>9}",
            outcome.policy.name(),
            outcome.metrics.mean_containment,
            outcome.metrics.mean_position,
            outcome.updates_sent,
            outcome.updates_processed,
        );
    }

    let lira = report.outcome(Policy::Lira).expect("LIRA evaluated");
    let drop = report
        .outcome(Policy::RandomDrop)
        .expect("Random Drop evaluated");
    if lira.metrics.mean_position > 0.0 {
        println!(
            "\nRandom Drop has {:.1}x the position error of LIRA at the same processing budget,",
            drop.metrics.mean_position / lira.metrics.mean_position
        );
    }
    println!(
        "and the taxis sent {:.1}x more wireless updates under Random Drop ({} vs {}).",
        drop.updates_sent as f64 / lira.updates_sent.max(1) as f64,
        drop.updates_sent,
        lira.updates_sent
    );
}
