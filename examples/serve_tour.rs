//! Serve tour: the networked façade, frame by frame.
//!
//! Boots `lira-serve`'s session loop on an ephemeral localhost port and
//! walks the whole wire protocol by hand — handshake, query
//! registration, batched updates, a THROTLOOP window with a plan
//! broadcast, an evaluation round, a live slice→shard rewrite, and the
//! session report — then lets `lira-storm`'s churn driver loose on the
//! same server to show sustained throughput. Byte-level protocol spec:
//! docs/WIRE.md; operator's guide: docs/OPERATIONS.md.
//!
//! Run with: `cargo run --release --example serve_tour`

use std::net::{TcpListener, TcpStream};

use lira_serve::protocol::{Frame, WireQuery, WireUpdate, HELLO_SUBSCRIBE_PLANS};
use lira_serve::server::{serve, ServeOptions};
use lira_serve::session::{ServeConfig, SessionCore};
use lira_serve::storm::{run_storm, StormConfig, TcpTransport, Transport};

fn main() {
    // --- Boot a server on an ephemeral port, two connections' worth. --
    let cfg = ServeConfig::new(2_000.0, 5_000);
    println!(
        "== lira-serve: {}×{} m, {} shards / {} slices, queue B = {}, µ = {}/s\n",
        cfg.bounds.max.x,
        cfg.bounds.max.y,
        cfg.shards,
        cfg.slices,
        cfg.queue_capacity,
        cfg.service_rate
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn({
        let cfg = cfg.clone();
        move || {
            let mut session = SessionCore::new(cfg);
            let opts = ServeOptions {
                exit_after_conns: Some(2),
                ..ServeOptions::default()
            };
            serve(listener, &mut session, &opts).expect("serve loop");
            session.telemetry_snapshot()
        }
    });

    // --- Connection 1: the protocol by hand. ---------------------------
    let mut t = TcpTransport::new(TcpStream::connect(addr).expect("connect")).expect("transport");

    t.send(&Frame::Hello {
        flags: HELLO_SUBSCRIBE_PLANS,
    })
    .unwrap();
    let Frame::Welcome {
        session,
        queue_capacity,
        default_delta,
        ..
    } = t.recv().unwrap()
    else {
        panic!("expected Welcome");
    };
    println!(
        "Hello → Welcome: session {session}, B = {queue_capacity}, default Δ = {default_delta} m"
    );

    t.send(&Frame::Register {
        queries: vec![
            WireQuery {
                id: 0,
                min_x: 0.0,
                min_y: 0.0,
                max_x: 500.0,
                max_y: 500.0,
            },
            WireQuery {
                id: 1,
                min_x: 1_000.0,
                min_y: 1_000.0,
                max_x: 1_800.0,
                max_y: 1_800.0,
            },
        ],
    })
    .unwrap();
    assert!(matches!(t.recv().unwrap(), Frame::Ack { .. }));
    println!("Register(2 queries) → Ack");

    // Overdrive the queue: λ far above µ forces THROTLOOP to throttle.
    let updates: Vec<WireUpdate> = (0..cfg.service_rate as u32 * 3)
        .map(|i| WireUpdate {
            id: i,
            x: (i % 40) as f64 * 50.0 + 5.0,
            y: (i / 40) as f64 * 50.0 + 5.0,
            vx: 3.0,
            vy: 0.0,
        })
        .collect();
    let n = updates.len();
    t.send(&Frame::Batch { t: 0.0, updates }).unwrap();
    println!("Batch({n} updates at t = 0)");

    t.send(&Frame::WindowClose {
        t: 1.0,
        window_s: 1.0,
    })
    .unwrap();
    let Frame::WindowAck {
        z,
        lambda,
        mu,
        dropped,
        adapted,
        ..
    } = t.recv().unwrap()
    else {
        panic!("expected WindowAck");
    };
    println!(
        "WindowClose → WindowAck: λ = {lambda:.0}/s vs µ = {mu:.0}/s ⇒ z = {z:.3} \
         ({dropped} tail-dropped, adapted = {adapted})"
    );
    if adapted == 1 {
        let Frame::Plan {
            epoch,
            regions,
            default_delta,
            ..
        } = t.recv().unwrap()
        else {
            panic!("expected the plan broadcast after the ack");
        };
        println!(
            "Plan broadcast: epoch {epoch}, {} regions × 16 B, default Δ = {default_delta} m",
            regions.len() / 16
        );
    }

    t.send(&Frame::EvalReq { t: 1.0 }).unwrap();
    let Frame::EvalRes {
        round,
        results,
        digest,
        ..
    } = t.recv().unwrap()
    else {
        panic!("expected EvalRes");
    };
    println!("EvalReq → EvalRes: round {round}, {results} result sets, digest {digest:016x}");

    // Live routing rewrite: slice 7 moves to shard 0.
    t.send(&Frame::SetSlice { slice: 7, shard: 0 }).unwrap();
    assert!(matches!(t.recv().unwrap(), Frame::Ack { .. }));
    println!("SetSlice(7 → shard 0) → Ack");

    t.send(&Frame::ReportReq).unwrap();
    let Frame::ReportRes { json } = t.recv().unwrap() else {
        panic!("expected ReportRes");
    };
    println!("ReportReq → ReportRes ({} bytes of JSON)", json.len());
    t.send(&Frame::Bye).unwrap();
    drop(t);

    // --- Connection 2: the storm driver, end to end. -------------------
    let mut storm_cfg = StormConfig::new(5_000, 2_000.0);
    storm_cfg.rounds = 25;
    let mut t = TcpTransport::new(TcpStream::connect(addr).expect("connect")).expect("transport");
    let report = run_storm(&mut t, &storm_cfg).expect("storm");
    drop(t);
    println!(
        "\n== lira-storm: {} updates in {:.3} s ⇒ {:.0} updates/s sustained",
        report.updates_sent, report.wall_s, report.sustained_ups
    );
    println!(
        "   {} shed at source under {} broadcast plans (last epoch {}), digest {:016x}",
        report.shed_at_source, report.plans_received, report.plan_epoch, report.digest
    );

    // --- What the server saw (telemetry; names in docs/TELEMETRY.md). --
    let snapshot = server.join().expect("server thread");
    println!("\n== server telemetry");
    for name in [
        "serve.rx.frames",
        "serve.rx.updates",
        "serve.queue.dropped",
        "serve.plan.broadcasts",
    ] {
        if let Some(c) = snapshot.counters.iter().find(|c| c.name == name) {
            println!("   {:<24} {:>10} {}", c.name, c.value, c.unit);
        }
    }
    if let Some(h) = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "serve.queue.wait_us")
    {
        println!(
            "   {:<24} p50 {:?} µs  p99 {:?} µs  ({} samples)",
            h.name,
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.count
        );
    }
}
