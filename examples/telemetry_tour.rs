//! Telemetry tour: what the pipeline tells you about itself.
//!
//! Runs one policy-comparison scenario and one deliberately starved
//! closed loop, then reads the story back from the telemetry snapshots
//! alone — partitioner work, per-adaptation cost, the plan's Δ spread,
//! shed-skew, queue latency quantiles, and the controller's journal.
//! Metric names and the operator's guide: docs/TELEMETRY.md.
//!
//! Run with: `cargo run --release --example telemetry_tour`

use lira::prelude::*;

fn main() {
    let mut sc = Scenario::small(23);
    sc.num_cars = 400;
    sc.duration_s = 120.0;

    // --- Open-loop policy comparison: one snapshot per lane. -----------
    println!(
        "== policy lanes ({} nodes, {} s, z = {})\n",
        sc.num_cars, sc.duration_s, sc.throttle
    );
    let report = run_scenario(&sc, &Policy::ALL);
    println!("lane           |   sent | admitted | adapt p50 (µs) | Δ spread (m) | greedy steps");
    println!("---------------+--------+----------+----------------+--------------+-------------");
    for o in &report.outcomes {
        let t = &o.telemetry;
        let adapts = t.histogram("lane.adapt_us");
        let deltas = t.histogram("plan.delta_m");
        println!(
            "{:<14} | {:>6} | {:>8} | {:>14} | {:>12} | {:>12}",
            o.policy.name(),
            t.counter("lane.updates_sent").unwrap_or(0),
            t.counter("lane.updates_admitted").unwrap_or(0),
            adapts
                .and_then(|h| h.quantile(0.5))
                .map_or("-".into(), |v| v.to_string()),
            deltas
                .and_then(|h| Some(format!("{}..{}", h.min?, h.max?)))
                .unwrap_or_else(|| "-".into()),
            t.counter("greedy.steps").unwrap_or(0),
        );
    }

    // Shed-skew: region-aware policies concentrate shedding, and the
    // per-region histograms show it (docs/TELEMETRY.md §4.3).
    println!("\nshed-skew (per-region admitted updates per plan epoch):");
    for o in &report.outcomes {
        if let Some(h) = o.telemetry.histogram("lane.region_admitted") {
            if h.count > 0 {
                println!(
                    "  {:<14} mean {:>6.1}   min {:>4}   max {:>5}",
                    o.policy.name(),
                    h.mean().unwrap_or(0.0),
                    h.min.unwrap_or(0),
                    h.max.unwrap_or(0),
                );
            }
        }
    }

    // Where the wall time went (nondeterministic, wall-clock).
    let p = &report.pipeline_telemetry;
    println!("\npipeline stages (µs):");
    for name in [
        "pipeline.setup_us",
        "pipeline.trace_us",
        "pipeline.reference_us",
        "pipeline.lanes_us",
    ] {
        if let Some(h) = p.histogram(name) {
            println!("  {:<24} {:>8}", name, h.sum);
        }
    }

    // --- Closed loop, starved on purpose: the journal tells the story. -
    let cfg = AdaptiveConfig {
        service_rate: 60.0,
        queue_capacity: 100,
        control_period_s: 20.0,
    };
    println!(
        "\n== closed loop, starved (µ = {} upd/s, B = {})\n",
        cfg.service_rate, cfg.queue_capacity
    );
    let adaptive = run_adaptive(&sc, &cfg);
    let t = &adaptive.telemetry;
    println!(
        "final operating point: λ = {:.1}/s  ρ = {:.2}  z = {:.3}  queue = {:.0}",
        t.gauge("throtloop.lambda").unwrap_or(f64::NAN),
        t.gauge("throtloop.rho").unwrap_or(f64::NAN),
        t.gauge("throtloop.z").unwrap_or(f64::NAN),
        t.gauge("queue.depth").unwrap_or(f64::NAN),
    );
    if let Some(h) = t.histogram("queue.service_latency_us") {
        println!(
            "queue latency: p50 {:?} µs  p99 {:?} µs  ({} serviced; {} overflow drops)",
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.count,
            t.counter("queue.overflow_drops").unwrap_or(0),
        );
    }
    println!(
        "controller steps: {} clamped, {} held, {} overload",
        t.counter("throtloop.clamped_steps").unwrap_or(0),
        t.counter("throtloop.held_steps").unwrap_or(0),
        t.counter("throtloop.overload_steps").unwrap_or(0),
    );
    if !t.events.is_empty() {
        println!("\njournal ({} events):", t.events.len());
        for e in t.events.iter().take(8) {
            println!(
                "  [{:>5.0}s] {:<5} {}",
                e.sim_time_s,
                e.level.as_str(),
                e.message
            );
        }
    }

    // Every snapshot is JSON; this is what --telemetry-json writes.
    let json = adaptive.telemetry.to_json();
    println!(
        "\nsnapshot JSON: {} bytes (schema v1, docs/TELEMETRY.md §3)",
        json.len()
    );
}
