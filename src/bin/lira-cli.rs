//! `lira-cli` — run LIRA simulations and inspect shedding plans from the
//! command line.
//!
//! ```text
//! lira-cli run      [options]   compare shedding policies at a fixed z
//! lira-cli adaptive [options]   closed loop: THROTLOOP picks z live
//! lira-cli plan     [options]   print one adaptation's region/throttler table
//!
//! common options:
//!   --scale small|default|paper   scenario preset        (default: default)
//!   --cars N                      mobile nodes
//!   --seed S                      master seed             (default: 17)
//!   --z F                         throttle fraction       (default: 0.5)
//!   --l N                         shedding regions (mod 3 = 1)
//!   --fairness F                  fairness threshold Δ⇔ in meters
//!   --dist proportional|inverse|random   query distribution
//!   --duration S                  measured seconds
//! run options:
//!   --policies lira,lira-grid,uniform,random-drop,utility-greedy,utility-model   (default: all)
//! adaptive options:
//!   --service-rate R              server capacity, updates/s (default 200)
//!   --capacity B                  input queue size           (default 500)
//! run/adaptive options:
//!   --telemetry-json PATH         write the run's telemetry snapshot(s)
//!                                 as JSON (schema: docs/TELEMETRY.md)
//! ```

use lira::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: lira-cli <run|adaptive|plan> [options]  (--help for details)");
        return ExitCode::from(2);
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match command.as_str() {
        "run" => cmd_run(&opts),
        "adaptive" => cmd_adaptive(&opts),
        "plan" => cmd_plan(&opts),
        "--help" | "-h" | "help" => {
            println!("see module docs: lira-cli <run|adaptive|plan> [options]");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}; expected run, adaptive, or plan");
            ExitCode::from(2)
        }
    }
}

/// Parsed command-line options on top of a scenario preset.
#[derive(Debug, Clone)]
struct Options {
    scenario: Scenario,
    policies: Vec<Policy>,
    service_rate: f64,
    capacity: usize,
    telemetry_json: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> std::result::Result<Options, String> {
        let mut scale = "default".to_string();
        let mut kv: Vec<(String, String)> = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            if key == "scale" {
                scale = value;
            } else {
                kv.push((key.to_string(), value));
            }
        }

        let mut sc = match scale.as_str() {
            "small" => Scenario::small(17),
            "default" => Scenario::default(),
            "paper" => Scenario::paper(17),
            other => return Err(format!("unknown scale {other:?}")),
        };
        let mut policies = Policy::ALL.to_vec();
        let mut service_rate = 200.0;
        let mut capacity = 500usize;
        let mut telemetry_json = None;

        for (key, value) in kv {
            match key.as_str() {
                "cars" => sc.num_cars = parse(&key, &value)?,
                "seed" => sc.seed = parse(&key, &value)?,
                "z" => sc.throttle = parse(&key, &value)?,
                "l" => {
                    let l: usize = parse(&key, &value)?;
                    sc = sc.with_regions(l);
                }
                "fairness" => sc.fairness = parse(&key, &value)?,
                "duration" => sc.duration_s = parse(&key, &value)?,
                "dist" => {
                    sc.query_distribution = match value.as_str() {
                        "proportional" => QueryDistribution::Proportional,
                        "inverse" => QueryDistribution::Inverse,
                        "random" => QueryDistribution::Random,
                        other => return Err(format!("unknown distribution {other:?}")),
                    }
                }
                "policies" => {
                    policies = value
                        .split(',')
                        .map(|p| match p.trim() {
                            "lira" => Ok(Policy::Lira),
                            "lira-grid" => Ok(Policy::LiraGrid),
                            "uniform" => Ok(Policy::UniformDelta),
                            "random-drop" => Ok(Policy::RandomDrop),
                            "utility-greedy" => Ok(Policy::UtilityGreedy),
                            "utility-model" => Ok(Policy::UtilityModel),
                            other => Err(format!("unknown policy {other:?}")),
                        })
                        .collect::<std::result::Result<_, String>>()?;
                }
                "service-rate" => service_rate = parse(&key, &value)?,
                "capacity" => capacity = parse(&key, &value)?,
                "telemetry-json" => telemetry_json = Some(value),
                other => return Err(format!("unknown option --{other}")),
            }
        }
        sc.lira_config()
            .validate()
            .map_err(|e| format!("invalid configuration: {e}"))?;
        Ok(Options {
            scenario: sc,
            policies,
            service_rate,
            capacity,
            telemetry_json,
        })
    }
}

fn parse<T: std::str::FromStr>(key: &str, value: &str) -> std::result::Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{key}: cannot parse {value:?}"))
}

fn cmd_run(opts: &Options) -> ExitCode {
    let sc = &opts.scenario;
    println!(
        "running {} nodes, {:.0} km², z = {}, l = {}, {} s...",
        sc.num_cars,
        sc.space_side * sc.space_side / 1e6,
        sc.throttle,
        sc.num_regions,
        sc.duration_s
    );
    let report = run_scenario(sc, &opts.policies);
    println!(
        "\nreference server processed {} updates for {} queries",
        report.reference_updates, report.num_queries
    );
    println!("\npolicy         | containment err | position err (m) | updates sent | processed");
    println!("---------------+-----------------+------------------+--------------+----------");
    for o in &report.outcomes {
        println!(
            "{:<14} | {:>15.4} | {:>16.3} | {:>12} | {:>9}",
            o.policy.name(),
            o.metrics.mean_containment,
            o.metrics.mean_position,
            o.updates_sent,
            o.updates_processed,
        );
    }
    if let Some(path) = &opts.telemetry_json {
        let mut snapshots: Vec<&TelemetrySnapshot> =
            report.outcomes.iter().map(|o| &o.telemetry).collect();
        snapshots.push(&report.pipeline_telemetry);
        if let Err(e) = write_snapshots(path, &snapshots) {
            eprintln!("telemetry: not written ({e})");
            return ExitCode::FAILURE;
        }
        println!("\ntelemetry written to {path}");
    }
    ExitCode::SUCCESS
}

/// Writes snapshots as a JSON array (one element per lane, plus the
/// pipeline stage timings for `run`).
fn write_snapshots(path: &str, snapshots: &[&TelemetrySnapshot]) -> std::io::Result<()> {
    let body: Vec<String> = snapshots.iter().map(|s| s.to_json()).collect();
    std::fs::write(path, format!("[{}]\n", body.join(",")))
}

fn cmd_adaptive(opts: &Options) -> ExitCode {
    let cfg = AdaptiveConfig {
        service_rate: opts.service_rate,
        queue_capacity: opts.capacity,
        control_period_s: 20.0,
    };
    println!(
        "closed loop: μ = {} upd/s, B = {}, control every {} s",
        cfg.service_rate, cfg.queue_capacity, cfg.control_period_s
    );
    let report = run_adaptive(&opts.scenario, &cfg);
    println!("\n  time |  λ (upd/s) |     z | queue | dropped");
    println!("-------+------------+-------+-------+--------");
    for w in &report.windows {
        println!(
            "{:>5.0}s | {:>10.1} | {:>5.3} | {:>5} | {:>7}",
            w.time, w.arrival_rate, w.throttle, w.queue_len, w.dropped
        );
    }
    println!(
        "\nfinal z = {:.3} | drop fraction {:.2}% | E^C_rr {:.4} | E^P_rr {:.2} m",
        report.final_throttle,
        report.drop_fraction * 100.0,
        report.metrics.mean_containment,
        report.metrics.mean_position
    );
    if let Some(path) = &opts.telemetry_json {
        if let Err(e) = write_snapshots(path, &[&report.telemetry]) {
            eprintln!("telemetry: not written ({e})");
            return ExitCode::FAILURE;
        }
        println!("telemetry written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_plan(opts: &Options) -> ExitCode {
    let sc = &opts.scenario;
    let bounds = sc.bounds();
    let config = sc.lira_config();
    let network = generate_network(&NetworkConfig {
        bounds,
        spacing: sc.road_spacing,
        arterial_period: sc.arterial_period,
        expressway_period: sc.expressway_period,
        jitter_frac: 0.2,
        dead_zones: sc.dead_zones.clone(),
        seed: sc.seed,
    });
    let demand = TrafficDemand::random_hotspots(&bounds, sc.hotspots, sc.seed);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: sc.num_cars,
            seed: sc.seed,
        },
    );
    for _ in 0..(sc.warmup_s as usize) {
        sim.step(1.0);
    }
    let positions: Vec<Point> = sim.cars().iter().map(|c| c.position()).collect();
    let queries = generate_queries(
        &bounds,
        &positions,
        &WorkloadConfig::from_ratio(
            sc.query_distribution,
            sc.num_cars,
            sc.query_ratio,
            sc.query_side,
            sc.seed,
        ),
    );
    let mut grid = match StatsGrid::new(config.alpha, bounds) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    grid.begin_snapshot();
    for car in sim.cars() {
        grid.observe_node(&car.position(), car.speed(), 1.0);
    }
    for q in &queries {
        grid.observe_query(&q.range);
    }
    grid.commit_snapshot();
    let shedder = match LiraShedder::new(config, 1000) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let adaptation = match shedder.adapt_with_throttle(&grid, sc.throttle) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "plan: l = {} regions | adaptation took {:?} | objective Σmᵢ·Δᵢ = {:.1} | wire size {} B",
        adaptation.plan.len(),
        adaptation.elapsed,
        adaptation.solution.inaccuracy,
        adaptation.plan.encode().len(),
    );
    println!("\n  # |     min corner     |  side (m) |  nodes | queries | Δ (m)");
    println!("----+--------------------+-----------+--------+---------+------");
    for (i, (region, stats)) in adaptation
        .plan
        .regions()
        .iter()
        .zip(&adaptation.partitioning.regions)
        .enumerate()
    {
        println!(
            "{:>3} | ({:>7.0},{:>7.0}) | {:>9.0} | {:>6.1} | {:>7.2} | {:>5.1}",
            i,
            region.area.min.x,
            region.area.min.y,
            region.area.width(),
            stats.nodes,
            stats.queries,
            region.throttler,
        );
    }
    ExitCode::SUCCESS
}
