//! # lira
//!
//! A Rust reproduction of **LIRA** — *Lightweight, Region-aware Load
//! Shedding in Mobile CQ Systems* (Gedik, Liu, Wu, Yu; ICDE 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`lira_core`] (re-exported as `core`) — the LIRA algorithms: GRIDREDUCE partitioning,
//!   GREEDYINCREMENT throttler setting, THROTLOOP budget control, shedding
//!   plans, and the Uniform Δ / Lira-Grid baselines;
//! * [`lira_mobility`] (`mobility`) — synthetic road networks, demand-driven
//!   traffic simulation, dead reckoning, trace recording and `f(Δ)`
//!   calibration;
//! * [`lira_server`] (`server`) — the mobile CQ server: node store, grid
//!   index, range CQ engine, bounded update queue, base stations, and the
//!   mobile-node-side shedder;
//! * [`lira_workload`] (`workload`) — Proportional / Inverse / Random range
//!   CQ generators;
//! * [`lira_sim`] (`sim`) — the end-to-end evaluation harness with the
//!   paper's accuracy metrics.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured results of every figure and
//! table in the paper's evaluation.

pub use lira_core as core;
pub use lira_mobility as mobility;
pub use lira_server as server;
pub use lira_sim as sim;
pub use lira_workload as workload;

/// One-stop prelude combining the preludes of all member crates.
pub mod prelude {
    pub use lira_core::prelude::*;
    pub use lira_mobility::prelude::*;
    pub use lira_server::prelude::*;
    pub use lira_sim::prelude::*;
    pub use lira_workload::prelude::*;
}
