//! End-to-end integration tests spanning all crates: traffic simulation →
//! dead reckoning → CQ servers → LIRA adaptation → accuracy metrics.
//!
//! These check the paper's *qualitative* claims on small scenarios; the
//! quantitative reproduction of each figure lives in `lira-bench`.

use lira::prelude::*;

#[test]
fn policy_quality_ordering_matches_paper() {
    // Section 4.3.1: LIRA outperforms Lira-Grid, which outperforms
    // Uniform Δ, which outperforms Random Drop. The LIRA vs Lira-Grid gap
    // needs spatial heterogeneity to show (paper: 1.08–2×), so this test
    // runs the medium default scenario rather than the tiny one, averaged
    // over two seeds: on a single seed the LIRA/Lira-Grid ratio wobbles
    // between ~0.85 and ~1.26 (see EXPERIMENTS.md), which is exactly the
    // single-run noise the parity tolerance below is meant to absorb.
    let reports: Vec<RunReport> = [101u64, 202]
        .iter()
        .map(|&seed| {
            let mut sc = Scenario::default();
            sc.seed = seed;
            sc.duration_s = 240.0;
            run_scenario(&sc, &Policy::ALL)
        })
        .collect();
    let m = |p: Policy| {
        let mut mean = MetricsReport::default();
        for report in &reports {
            let r = report.outcome(p).unwrap().metrics;
            mean.mean_position += r.mean_position / reports.len() as f64;
            mean.mean_containment += r.mean_containment / reports.len() as f64;
        }
        mean
    };

    let lira = m(Policy::Lira);
    let grid = m(Policy::LiraGrid);
    let uniform = m(Policy::UniformDelta);
    let drop = m(Policy::RandomDrop);

    // Paper (Figs. 4–5): Lira-Grid is the closest competitor (1.08–2x
    // LIRA at z = 0.5), so on one seed we only require parity-or-better
    // within noise; the averaged superiority is shown by the fig04/fig08
    // experiment binaries.
    assert!(
        lira.mean_position <= grid.mean_position * 1.25,
        "LIRA {} vs Lira-Grid {}",
        lira.mean_position,
        grid.mean_position
    );
    assert!(
        grid.mean_position < uniform.mean_position,
        "Lira-Grid {} vs Uniform {}",
        grid.mean_position,
        uniform.mean_position
    );
    assert!(
        uniform.mean_position < drop.mean_position,
        "Uniform {} vs Random Drop {}",
        uniform.mean_position,
        drop.mean_position
    );
    // "Vastly superior to random update dropping".
    assert!(
        drop.mean_position > 3.0 * lira.mean_position,
        "Random Drop {} should be several times LIRA {}",
        drop.mean_position,
        lira.mean_position
    );
    // Containment error agrees on the large gap.
    assert!(drop.mean_containment > 2.0 * lira.mean_containment);
}

#[test]
fn smaller_throttle_increases_error() {
    // Figures 4–7: absolute errors grow as the budget shrinks.
    let mut errors = Vec::new();
    for z in [0.8, 0.5, 0.3] {
        let mut sc = Scenario::small(55);
        sc.throttle = z;
        let report = run_scenario(&sc, &[Policy::Lira]);
        errors.push(report.outcome(Policy::Lira).unwrap().metrics.mean_position);
    }
    assert!(
        errors[0] < errors[2],
        "position error should grow as z shrinks: {errors:?}"
    );
}

#[test]
fn near_full_budget_gives_near_zero_error() {
    // The z -> 1 observation: LIRA cuts the small required fraction from
    // query-free regions, leaving query results almost untouched.
    let mut sc = Scenario::small(77);
    sc.throttle = 0.95;
    let report = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
    let lira = report.outcome(Policy::Lira).unwrap().metrics;
    let drop = report.outcome(Policy::RandomDrop).unwrap().metrics;
    assert!(
        lira.mean_containment < 0.02,
        "LIRA containment at z=0.95: {}",
        lira.mean_containment
    );
    assert!(
        drop.mean_containment > 2.0 * lira.mean_containment,
        "Random Drop {} vs LIRA {}",
        drop.mean_containment,
        lira.mean_containment
    );
}

#[test]
fn all_query_distributions_run() {
    // Figures 5–7 cover Proportional, Inverse, and Random distributions.
    for dist in QueryDistribution::ALL {
        let mut sc = Scenario::small(31);
        sc.query_distribution = dist;
        sc.duration_s = 60.0;
        let report = run_scenario(&sc, &[Policy::Lira, Policy::UniformDelta]);
        let lira = report.outcome(Policy::Lira).unwrap();
        let uniform = report.outcome(Policy::UniformDelta).unwrap();
        assert!(report.num_queries > 0, "{dist:?}");
        assert!(
            lira.metrics.mean_position <= uniform.metrics.mean_position * 1.2,
            "{dist:?}: LIRA {} vs Uniform {}",
            lira.metrics.mean_position,
            uniform.metrics.mean_position
        );
    }
}

#[test]
fn budget_tracking_close_to_throttle_fraction() {
    // The update-budget constraint: processed updates ≈ z × reference.
    let mut sc = Scenario::small(91);
    sc.duration_s = 240.0;
    for z in [0.7, 0.4] {
        sc.throttle = z;
        let report = run_scenario(&sc, &[Policy::Lira]);
        let frac = report.outcome(Policy::Lira).unwrap().processed_fraction;
        assert!(
            (frac - z).abs() < 0.30,
            "z = {z}: processed fraction {frac} too far from budget"
        );
    }
}

#[test]
fn fairness_threshold_bounds_plan_spread() {
    // Section 3.1.1: |Δ_i − Δ_j| ≤ Δ⇔ in the deployed plan.
    let mut sc = Scenario::small(13);
    sc.fairness = 20.0;
    sc.duration_s = 40.0;
    let report = run_scenario(&sc, &[Policy::Lira]);
    assert!(report.outcome(Policy::Lira).is_some());
    // Rebuild the plan directly to inspect the throttlers.
    let config = sc.lira_config();
    let bounds = sc.bounds();
    let network = generate_network(&NetworkConfig {
        bounds,
        spacing: sc.road_spacing,
        arterial_period: sc.arterial_period,
        expressway_period: sc.expressway_period,
        jitter_frac: 0.2,
        dead_zones: sc.dead_zones.clone(),
        seed: sc.seed,
    });
    let demand = TrafficDemand::random_hotspots(&bounds, sc.hotspots, sc.seed);
    let mut sim = TrafficSimulator::new(
        network,
        &demand,
        TrafficConfig {
            num_cars: sc.num_cars,
            seed: sc.seed,
        },
    );
    for _ in 0..60 {
        sim.step(1.0);
    }
    let mut grid = StatsGrid::new(config.alpha, bounds).unwrap();
    grid.begin_snapshot();
    for car in sim.cars() {
        grid.observe_node(&car.position(), car.speed(), 1.0);
    }
    grid.commit_snapshot();
    let shedder = LiraShedder::new(config, 100).unwrap();
    let plan = shedder.adapt_with_throttle(&grid, 0.3).unwrap().plan;
    let max = plan
        .regions()
        .iter()
        .map(|r| r.throttler)
        .fold(f64::MIN, f64::max);
    let min = plan
        .regions()
        .iter()
        .map(|r| r.throttler)
        .fold(f64::MAX, f64::min);
    assert!(
        max - min <= 20.0 + 1e-9,
        "plan spread {} exceeds fairness",
        max - min
    );
}

#[test]
fn random_drop_wastes_wireless_bandwidth() {
    // Section 2.1's first argument against server-actuated shedding: the
    // dropped updates still cross the wireless medium.
    let sc = Scenario::small(41);
    let report = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
    let lira = report.outcome(Policy::Lira).unwrap();
    let drop = report.outcome(Policy::RandomDrop).unwrap();
    assert!(
        drop.updates_sent as f64 > 1.4 * lira.updates_sent as f64,
        "Random Drop sent {} vs LIRA {}",
        drop.updates_sent,
        lira.updates_sent
    );
}

#[test]
fn facade_prelude_exposes_full_pipeline() {
    // The `lira` facade alone is enough to drive every layer (compile-time
    // oriented test; minimal runtime).
    let bounds = Rect::from_coords(0.0, 0.0, 512.0, 512.0);
    let mut grid = StatsGrid::new(16, bounds).unwrap();
    grid.begin_snapshot();
    grid.observe_node(&Point::new(10.0, 10.0), 5.0, 1.0);
    grid.commit_snapshot();
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config.num_regions = 4;
    config.alpha = 16;
    let shedder = LiraShedder::new(config, 100).unwrap();
    let adaptation = shedder.adapt_with_throttle(&grid, 0.5).unwrap();
    assert_eq!(adaptation.plan.len(), 4);
    let mobile = MobileShedder::install(0, adaptation.plan.regions().to_vec(), 5.0);
    assert!(mobile.throttler_at(&Point::new(10.0, 10.0)) >= 5.0);
}
