//! Chaos/conformance suite for the fault-injected uplink: every test is
//! seeded-deterministic (no wall clock, no ambient entropy), so a failure
//! here is a real regression, not flake.
//!
//! The suite pins four contracts:
//! 1. **Reproducibility** — a `(FaultProfile, seed)` pair yields
//!    bit-identical reports, in sequential *and* parallel pipeline modes.
//! 2. **Conformance** — the zero-fault profile is bit-identical to the
//!    perfect-channel path the seed repository always ran.
//! 3. **Degradation** — accuracy degrades monotonically (within
//!    tolerance) as channel loss rises, and the closed-loop controller
//!    survives outages with finite, recovering `z`.
//! 4. **Accounting** — sent = delivered + lost + pending, always.

use lira::prelude::*;

/// A compact scenario so the whole suite stays debug-build friendly.
fn base_scenario(seed: u64) -> Scenario {
    let mut sc = Scenario::small(seed);
    sc.num_cars = 150;
    sc.warmup_s = 20.0;
    sc.duration_s = 60.0;
    sc
}

/// A profile exercising every fault model at once.
fn stormy_profile() -> FaultProfile {
    FaultProfile {
        loss: LossModel::GilbertElliott {
            p_g2b: 0.05,
            p_b2g: 0.3,
            loss_good: 0.02,
            loss_bad: 0.8,
        },
        delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 3.0,
        },
        duplicate_prob: 0.05,
        outages: vec![Outage {
            start_s: 50.0,
            end_s: 60.0,
        }],
        retry: RetryPolicy {
            max_retries: 2,
            backoff_s: 1.0,
        },
    }
}

/// Field-by-field bitwise comparison of two outcomes, excluding the
/// wall-clock `adapt_micros` timings (their *length* must still agree)
/// and the fault books (compared separately where both sides keep them —
/// the perfect-channel path reports all zeros by construction).
fn assert_outcomes_identical(a: &PolicyOutcome, b: &PolicyOutcome, ctx: &str) {
    assert_eq!(a.policy, b.policy, "{ctx}");
    assert_eq!(a.metrics, b.metrics, "{ctx}: metrics diverged");
    assert_eq!(a.updates_sent, b.updates_sent, "{ctx}");
    assert_eq!(a.updates_processed, b.updates_processed, "{ctx}");
    assert_eq!(
        a.processed_fraction.to_bits(),
        b.processed_fraction.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.plan_regions, b.plan_regions, "{ctx}");
    assert_eq!(a.adapt_micros.len(), b.adapt_micros.len(), "{ctx}");
}

#[test]
fn zero_fault_profile_is_bit_identical_to_perfect_channel() {
    // `None` runs the historical inline ingest path; `FaultProfile::none`
    // routes through the channel machinery with every model disabled.
    // The two must be indistinguishable down to the last bit, for every
    // policy — this is the conformance proof that inserting the channel
    // layer cannot have changed the seed repository's behavior.
    let perfect = base_scenario(91);
    let faultless = base_scenario(91).with_faults(FaultProfile::none());
    let a = run_scenario(&perfect, &Policy::ALL);
    let b = run_scenario(&faultless, &Policy::ALL);
    assert_eq!(a.reference_updates, b.reference_updates);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_outcomes_identical(oa, ob, oa.policy.name());
        // The channel path *does* keep its own books.
        assert_eq!(ob.faults.sent, ob.faults.delivered);
        assert_eq!(ob.faults.lost, 0);
    }
}

#[test]
fn same_profile_and_seed_reproduce_bit_identical_reports() {
    let sc = base_scenario(17).with_faults(stormy_profile());
    let a = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
    let b = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
    assert_eq!(a.reference_updates, b.reference_updates);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_outcomes_identical(oa, ob, oa.policy.name());
        assert_eq!(oa.faults, ob.faults, "{}: fault books", oa.policy.name());
    }
    // The profile actually bites: faults fired somewhere.
    let f = &a.outcomes[0].faults;
    assert!(f.lost + f.retries + f.duplicates > 0, "{f:?}");
}

#[test]
fn parallel_lanes_match_sequential_under_faults() {
    // The per-lane channel derives from the lane-RNG rule, so lanes stay
    // self-contained and thread scheduling cannot leak into results.
    let sc = base_scenario(23).with_faults(stormy_profile());
    let seq = SimPipeline::new()
        .with_parallelism(Parallelism::Sequential)
        .run(&sc, &Policy::ALL);
    let par = SimPipeline::new()
        .with_parallelism(Parallelism::Auto)
        .run(&sc, &Policy::ALL);
    assert_eq!(seq.reference_updates, par.reference_updates);
    for (os, op) in seq.outcomes.iter().zip(&par.outcomes) {
        assert_outcomes_identical(os, op, os.policy.name());
        assert_eq!(os.faults, op.faults, "{}: fault books", os.policy.name());
    }
}

#[test]
fn striped_engine_matches_single_stripe_under_faults() {
    // Striping must not perturb a fault-injected run either: delayed,
    // duplicated, and lost updates exercise the dirty-round and handoff
    // paths with stale ingests, and the report must still match the
    // shards = 1 degenerate case bit for bit — in pooled and inline
    // modes.
    let sc = base_scenario(101).with_faults(stormy_profile());
    let baseline = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 1 })
        .run(&sc, &Policy::ALL);
    let striped = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 4 })
        .run(&sc, &Policy::ALL);
    let inline = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 4 })
        .with_parallelism(Parallelism::Sequential)
        .run(&sc, &Policy::ALL);
    assert_eq!(baseline.reference_updates, striped.reference_updates);
    assert_eq!(baseline.reference_updates, inline.reference_updates);
    for ((oi, os), ol) in baseline
        .outcomes
        .iter()
        .zip(&striped.outcomes)
        .zip(&inline.outcomes)
    {
        assert_outcomes_identical(oi, os, oi.policy.name());
        assert_outcomes_identical(oi, ol, oi.policy.name());
        assert_eq!(oi.faults, os.faults, "{}: fault books", oi.policy.name());
        assert_eq!(oi.faults, ol.faults, "{}: fault books", oi.policy.name());
    }
    // The profile actually bit.
    let f = &striped.outcomes[0].faults;
    assert!(f.lost + f.retries + f.duplicates > 0, "{f:?}");
}

#[test]
fn fault_accounting_is_conserved_across_policies() {
    let sc = base_scenario(31).with_faults(stormy_profile());
    let report = run_scenario(&sc, &Policy::ALL);
    for o in &report.outcomes {
        let f = &o.faults;
        assert!(f.accounted(), "{}: {f:?}", o.policy.name());
        assert_eq!(f.sent, o.updates_sent, "{}", o.policy.name());
        assert!(f.delivered <= f.sent);
        assert!(f.transmissions >= f.sent, "retries only add transmissions");
        // A duplicate copy rides the same transmission (ack-loss model),
        // so airtime decomposes as originals + retries exactly.
        assert_eq!(f.transmissions, f.sent + f.retries);
        // The server can only apply what the channel delivered.
        assert!(o.updates_processed <= f.delivered + f.duplicates);
        assert!(f.mean_staleness_s >= 0.0 && f.mean_staleness_s.is_finite());
    }
}

#[test]
fn accuracy_degrades_monotonically_with_loss_rate() {
    // Position error under LIRA must not *improve* when the channel gets
    // worse. Exact monotonicity is too strict for a stochastic system —
    // a 10% relative tolerance absorbs single-seed noise while still
    // failing on any real inversion (the 0 → 0.6 gap is far larger).
    let losses = [0.0, 0.3, 0.6];
    let errors: Vec<f64> = losses
        .iter()
        .map(|&p| {
            let mut sc = base_scenario(47);
            if p > 0.0 {
                sc = sc.with_faults(FaultProfile::iid_loss(p));
            }
            let report = run_scenario(&sc, &[Policy::Lira]);
            report.outcomes[0].metrics.mean_position
        })
        .collect();
    for w in errors.windows(2) {
        assert!(
            w[1] >= w[0] * 0.9,
            "error must not shrink as loss rises: {errors:?}"
        );
    }
    assert!(
        errors[2] > errors[0],
        "60% loss must hurt vs a clean channel: {errors:?}"
    );
}

#[test]
fn pure_duplication_is_accuracy_neutral() {
    // A duplicate of an undelayed update carries the same motion model at
    // the same timestamp: the node store overwrite is idempotent, so
    // accuracy must be bit-identical to the clean channel — only the
    // accounting may differ.
    let clean = base_scenario(53);
    let dup = base_scenario(53).with_faults(FaultProfile {
        duplicate_prob: 1.0,
        ..FaultProfile::none()
    });
    let a = run_scenario(&clean, &[Policy::Lira]);
    let b = run_scenario(&dup, &[Policy::Lira]);
    assert_eq!(a.outcomes[0].metrics, b.outcomes[0].metrics);
    assert_eq!(b.outcomes[0].faults.duplicates, b.outcomes[0].faults.sent);
}

#[test]
fn retries_recover_updates_an_outage_would_lose() {
    let outage = Outage {
        start_s: 40.0,
        end_s: 55.0,
    };
    let run = |retry: RetryPolicy| {
        let sc = base_scenario(59).with_faults(FaultProfile {
            outages: vec![outage],
            retry,
            ..FaultProfile::none()
        });
        run_scenario(&sc, &[Policy::Lira]).outcomes[0].clone()
    };
    let without = run(RetryPolicy::none());
    let with = run(RetryPolicy {
        max_retries: 30,
        backoff_s: 1.0,
    });
    assert!(
        without.faults.lost > 0,
        "the outage must actually lose traffic: {:?}",
        without.faults
    );
    assert!(with.faults.retries > 0);
    assert!(
        with.faults.lost < without.faults.lost,
        "retries must recover losses: {:?} vs {:?}",
        with.faults,
        without.faults
    );
    assert!(with.faults.delivered > without.faults.delivered);
}

#[test]
fn closed_loop_survives_outage_and_recovers_throttle() {
    // An outage starves the input queue (λ collapses), then ends with the
    // retry backlog flushing in. The controller must keep z finite and in
    // range at every window and come back up once conditions normalize.
    let mut sc = base_scenario(67);
    sc.duration_s = 120.0;
    let sc = sc.with_faults(FaultProfile {
        outages: vec![Outage {
            start_s: 50.0,
            end_s: 80.0,
        }],
        retry: RetryPolicy {
            max_retries: 5,
            backoff_s: 2.0,
        },
        ..FaultProfile::none()
    });
    let cfg = AdaptiveConfig {
        service_rate: 400.0,
        queue_capacity: 400,
        control_period_s: 10.0,
    };
    let report = run_adaptive(&sc, &cfg);
    for w in &report.windows {
        assert!(
            w.throttle.is_finite() && (1e-3..=1.0).contains(&w.throttle),
            "window at t = {} has z = {}",
            w.time,
            w.throttle
        );
        assert!(w.arrival_rate.is_finite());
    }
    // Capacity is ample outside the outage: the controller ends back at
    // (or near) the full budget instead of wedging low.
    assert!(
        report.final_throttle > 0.9,
        "z failed to recover: {}",
        report.final_throttle
    );
    assert!(report.faults.accounted(), "{:?}", report.faults);
}

#[test]
fn adaptive_zero_fault_profile_matches_perfect_channel() {
    // The closed loop gets the same conformance guarantee as the fixed-z
    // pipeline: a disabled channel changes nothing.
    let mut perfect = base_scenario(71);
    perfect.duration_s = 80.0;
    let faultless = perfect.clone().with_faults(FaultProfile::none());
    let cfg = AdaptiveConfig {
        service_rate: 60.0,
        queue_capacity: 150,
        control_period_s: 10.0,
    };
    let a = run_adaptive(&perfect, &cfg);
    let b = run_adaptive(&faultless, &cfg);
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(
        a.final_throttle.to_bits(),
        b.final_throttle.to_bits(),
        "z diverged: {} vs {}",
        a.final_throttle,
        b.final_throttle
    );
    assert_eq!(a.drop_fraction.to_bits(), b.drop_fraction.to_bits());
}

#[test]
fn delay_reordering_keeps_metrics_finite_and_bounded() {
    // Heavy reordering (delays far beyond the update cadence) stresses
    // the node store's stale-rejection path; the run must stay sane:
    // finite errors, monotone accounting, staleness within the delay
    // bound.
    let sc = base_scenario(83).with_faults(FaultProfile {
        delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 8.0,
        },
        ..FaultProfile::none()
    });
    let report = run_scenario(&sc, &[Policy::Lira, Policy::UniformDelta]);
    for o in &report.outcomes {
        assert!(o.metrics.mean_containment.is_finite());
        assert!(o.metrics.mean_position.is_finite());
        assert!(o.faults.accounted(), "{:?}", o.faults);
        assert!(
            o.faults.mean_staleness_s > 0.0 && o.faults.mean_staleness_s < 8.0,
            "staleness {} outside the delay envelope",
            o.faults.mean_staleness_s
        );
        // Delayed-but-delivered updates may be rejected as stale, never
        // invented: processed ≤ delivered.
        assert!(o.updates_processed <= o.faults.delivered);
    }
}
