//! Chaos/conformance suite for the fault-injected uplink: every test is
//! seeded-deterministic (no wall clock, no ambient entropy), so a failure
//! here is a real regression, not flake.
//!
//! The suite pins four contracts:
//! 1. **Reproducibility** — a `(FaultProfile, seed)` pair yields
//!    bit-identical reports, in sequential *and* parallel pipeline modes.
//! 2. **Conformance** — the zero-fault profile is bit-identical to the
//!    perfect-channel path the seed repository always ran.
//! 3. **Degradation** — accuracy degrades monotonically (within
//!    tolerance) as channel loss rises, and the closed-loop controller
//!    survives outages with finite, recovering `z`.
//! 4. **Accounting** — sent = delivered + lost + pending, always.

use lira::prelude::*;

/// A compact scenario so the whole suite stays debug-build friendly.
fn base_scenario(seed: u64) -> Scenario {
    let mut sc = Scenario::small(seed);
    sc.num_cars = 150;
    sc.warmup_s = 20.0;
    sc.duration_s = 60.0;
    sc
}

/// A profile exercising every fault model at once.
fn stormy_profile() -> FaultProfile {
    FaultProfile {
        loss: LossModel::GilbertElliott {
            p_g2b: 0.05,
            p_b2g: 0.3,
            loss_good: 0.02,
            loss_bad: 0.8,
        },
        delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 3.0,
        },
        duplicate_prob: 0.05,
        outages: vec![Outage::window(50.0, 60.0)],
        retry: RetryPolicy {
            max_retries: 2,
            backoff_s: 1.0,
        },
    }
}

/// Field-by-field bitwise comparison of two outcomes, excluding the
/// wall-clock `adapt_micros` timings (their *length* must still agree)
/// and the fault books (compared separately where both sides keep them —
/// the perfect-channel path reports all zeros by construction).
fn assert_outcomes_identical(a: &PolicyOutcome, b: &PolicyOutcome, ctx: &str) {
    assert_eq!(a.policy, b.policy, "{ctx}");
    assert_eq!(a.metrics, b.metrics, "{ctx}: metrics diverged");
    assert_eq!(a.updates_sent, b.updates_sent, "{ctx}");
    assert_eq!(a.updates_processed, b.updates_processed, "{ctx}");
    assert_eq!(
        a.processed_fraction.to_bits(),
        b.processed_fraction.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.plan_regions, b.plan_regions, "{ctx}");
    assert_eq!(a.adapt_micros.len(), b.adapt_micros.len(), "{ctx}");
}

#[test]
fn zero_fault_profile_is_bit_identical_to_perfect_channel() {
    // `None` runs the historical inline ingest path; `FaultProfile::none`
    // routes through the channel machinery with every model disabled.
    // The two must be indistinguishable down to the last bit, for every
    // policy — this is the conformance proof that inserting the channel
    // layer cannot have changed the seed repository's behavior.
    let perfect = base_scenario(91);
    let faultless = base_scenario(91).with_faults(FaultProfile::none());
    let a = run_scenario(&perfect, &Policy::ALL);
    let b = run_scenario(&faultless, &Policy::ALL);
    assert_eq!(a.reference_updates, b.reference_updates);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_outcomes_identical(oa, ob, oa.policy.name());
        // The channel path *does* keep its own books.
        assert_eq!(ob.faults.sent, ob.faults.delivered);
        assert_eq!(ob.faults.lost, 0);
    }
}

#[test]
fn same_profile_and_seed_reproduce_bit_identical_reports() {
    let sc = base_scenario(17).with_faults(stormy_profile());
    let a = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
    let b = run_scenario(&sc, &[Policy::Lira, Policy::RandomDrop]);
    assert_eq!(a.reference_updates, b.reference_updates);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_outcomes_identical(oa, ob, oa.policy.name());
        assert_eq!(oa.faults, ob.faults, "{}: fault books", oa.policy.name());
    }
    // The profile actually bites: faults fired somewhere.
    let f = &a.outcomes[0].faults;
    assert!(f.lost + f.retries + f.duplicates > 0, "{f:?}");
}

#[test]
fn parallel_lanes_match_sequential_under_faults() {
    // The per-lane channel derives from the lane-RNG rule, so lanes stay
    // self-contained and thread scheduling cannot leak into results.
    let sc = base_scenario(23).with_faults(stormy_profile());
    let seq = SimPipeline::new()
        .with_parallelism(Parallelism::Sequential)
        .run(&sc, &Policy::ALL);
    let par = SimPipeline::new()
        .with_parallelism(Parallelism::Auto)
        .run(&sc, &Policy::ALL);
    assert_eq!(seq.reference_updates, par.reference_updates);
    for (os, op) in seq.outcomes.iter().zip(&par.outcomes) {
        assert_outcomes_identical(os, op, os.policy.name());
        assert_eq!(os.faults, op.faults, "{}: fault books", os.policy.name());
    }
}

#[test]
fn striped_engine_matches_single_stripe_under_faults() {
    // Striping must not perturb a fault-injected run either: delayed,
    // duplicated, and lost updates exercise the dirty-round and handoff
    // paths with stale ingests, and the report must still match the
    // shards = 1 degenerate case bit for bit — in pooled and inline
    // modes.
    let sc = base_scenario(101).with_faults(stormy_profile());
    let baseline = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 1 })
        .run(&sc, &Policy::ALL);
    let striped = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 4 })
        .run(&sc, &Policy::ALL);
    let inline = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 4 })
        .with_parallelism(Parallelism::Sequential)
        .run(&sc, &Policy::ALL);
    assert_eq!(baseline.reference_updates, striped.reference_updates);
    assert_eq!(baseline.reference_updates, inline.reference_updates);
    for ((oi, os), ol) in baseline
        .outcomes
        .iter()
        .zip(&striped.outcomes)
        .zip(&inline.outcomes)
    {
        assert_outcomes_identical(oi, os, oi.policy.name());
        assert_outcomes_identical(oi, ol, oi.policy.name());
        assert_eq!(oi.faults, os.faults, "{}: fault books", oi.policy.name());
        assert_eq!(oi.faults, ol.faults, "{}: fault books", oi.policy.name());
    }
    // The profile actually bit.
    let f = &striped.outcomes[0].faults;
    assert!(f.lost + f.retries + f.duplicates > 0, "{f:?}");
}

#[test]
fn fault_accounting_is_conserved_across_policies() {
    let sc = base_scenario(31).with_faults(stormy_profile());
    let report = run_scenario(&sc, &Policy::ALL);
    for o in &report.outcomes {
        let f = &o.faults;
        assert!(f.accounted(), "{}: {f:?}", o.policy.name());
        assert_eq!(f.sent, o.updates_sent, "{}", o.policy.name());
        assert!(f.delivered <= f.sent);
        assert!(f.transmissions >= f.sent, "retries only add transmissions");
        // A duplicate copy rides the same transmission (ack-loss model),
        // so airtime decomposes as originals + retries exactly.
        assert_eq!(f.transmissions, f.sent + f.retries);
        // The server can only apply what the channel delivered.
        assert!(o.updates_processed <= f.delivered + f.duplicates);
        assert!(f.mean_staleness_s >= 0.0 && f.mean_staleness_s.is_finite());
    }
}

#[test]
fn accuracy_degrades_monotonically_with_loss_rate() {
    // Position error under LIRA must not *improve* when the channel gets
    // worse. Exact monotonicity is too strict for a stochastic system —
    // a 10% relative tolerance absorbs single-seed noise while still
    // failing on any real inversion (the 0 → 0.6 gap is far larger).
    let losses = [0.0, 0.3, 0.6];
    let errors: Vec<f64> = losses
        .iter()
        .map(|&p| {
            let mut sc = base_scenario(47);
            if p > 0.0 {
                sc = sc.with_faults(FaultProfile::iid_loss(p));
            }
            let report = run_scenario(&sc, &[Policy::Lira]);
            report.outcomes[0].metrics.mean_position
        })
        .collect();
    for w in errors.windows(2) {
        assert!(
            w[1] >= w[0] * 0.9,
            "error must not shrink as loss rises: {errors:?}"
        );
    }
    assert!(
        errors[2] > errors[0],
        "60% loss must hurt vs a clean channel: {errors:?}"
    );
}

#[test]
fn pure_duplication_is_accuracy_neutral() {
    // A duplicate of an undelayed update carries the same motion model at
    // the same timestamp: the node store overwrite is idempotent, so
    // accuracy must be bit-identical to the clean channel — only the
    // accounting may differ.
    let clean = base_scenario(53);
    let dup = base_scenario(53).with_faults(FaultProfile {
        duplicate_prob: 1.0,
        ..FaultProfile::none()
    });
    let a = run_scenario(&clean, &[Policy::Lira]);
    let b = run_scenario(&dup, &[Policy::Lira]);
    assert_eq!(a.outcomes[0].metrics, b.outcomes[0].metrics);
    assert_eq!(b.outcomes[0].faults.duplicates, b.outcomes[0].faults.sent);
}

#[test]
fn retries_recover_updates_an_outage_would_lose() {
    let outage = Outage::window(40.0, 55.0);
    let run = |retry: RetryPolicy| {
        let sc = base_scenario(59).with_faults(FaultProfile {
            outages: vec![outage],
            retry,
            ..FaultProfile::none()
        });
        run_scenario(&sc, &[Policy::Lira]).outcomes[0].clone()
    };
    let without = run(RetryPolicy::none());
    let with = run(RetryPolicy {
        max_retries: 30,
        backoff_s: 1.0,
    });
    assert!(
        without.faults.lost > 0,
        "the outage must actually lose traffic: {:?}",
        without.faults
    );
    assert!(with.faults.retries > 0);
    assert!(
        with.faults.lost < without.faults.lost,
        "retries must recover losses: {:?} vs {:?}",
        with.faults,
        without.faults
    );
    assert!(with.faults.delivered > without.faults.delivered);
}

#[test]
fn closed_loop_survives_outage_and_recovers_throttle() {
    // An outage starves the input queue (λ collapses), then ends with the
    // retry backlog flushing in. The controller must keep z finite and in
    // range at every window and come back up once conditions normalize.
    let mut sc = base_scenario(67);
    sc.duration_s = 120.0;
    let sc = sc.with_faults(FaultProfile {
        outages: vec![Outage::window(50.0, 80.0)],
        retry: RetryPolicy {
            max_retries: 5,
            backoff_s: 2.0,
        },
        ..FaultProfile::none()
    });
    let cfg = AdaptiveConfig {
        service_rate: 400.0,
        queue_capacity: 400,
        control_period_s: 10.0,
    };
    let report = run_adaptive(&sc, &cfg);
    for w in &report.windows {
        assert!(
            w.throttle.is_finite() && (1e-3..=1.0).contains(&w.throttle),
            "window at t = {} has z = {}",
            w.time,
            w.throttle
        );
        assert!(w.arrival_rate.is_finite());
    }
    // Capacity is ample outside the outage: the controller ends back at
    // (or near) the full budget instead of wedging low.
    assert!(
        report.final_throttle > 0.9,
        "z failed to recover: {}",
        report.final_throttle
    );
    assert!(report.faults.accounted(), "{:?}", report.faults);
}

#[test]
fn adaptive_zero_fault_profile_matches_perfect_channel() {
    // The closed loop gets the same conformance guarantee as the fixed-z
    // pipeline: a disabled channel changes nothing.
    let mut perfect = base_scenario(71);
    perfect.duration_s = 80.0;
    let faultless = perfect.clone().with_faults(FaultProfile::none());
    let cfg = AdaptiveConfig {
        service_rate: 60.0,
        queue_capacity: 150,
        control_period_s: 10.0,
    };
    let a = run_adaptive(&perfect, &cfg);
    let b = run_adaptive(&faultless, &cfg);
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(
        a.final_throttle.to_bits(),
        b.final_throttle.to_bits(),
        "z diverged: {} vs {}",
        a.final_throttle,
        b.final_throttle
    );
    assert_eq!(a.drop_fraction.to_bits(), b.drop_fraction.to_bits());
}

#[test]
fn full_space_regional_outage_is_bit_identical_to_a_global_window() {
    // A regional outage whose rect covers every possible sender position
    // is the same fault as a plain time-window outage — down to the last
    // bit, since outage losses draw no RNG either way.
    let sc = base_scenario(37);
    let everywhere = Rect::from_coords(-1.0, -1.0, sc.space_side + 1.0, sc.space_side + 1.0);
    let global = sc.clone().with_faults(FaultProfile {
        outages: vec![Outage::window(30.0, 45.0)],
        ..FaultProfile::none()
    });
    let regional = sc.with_faults(FaultProfile {
        outages: vec![Outage::regional(30.0, 45.0, everywhere)],
        ..FaultProfile::none()
    });
    let a = run_scenario(&global, &Policy::ALL);
    let b = run_scenario(&regional, &Policy::ALL);
    assert_eq!(a.reference_updates, b.reference_updates);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_outcomes_identical(oa, ob, oa.policy.name());
        assert_eq!(oa.faults, ob.faults, "{}: fault books", oa.policy.name());
    }
    assert!(a.outcomes[0].faults.lost > 0, "the outage must bite");
}

#[test]
fn regional_outage_loses_strictly_less_than_its_global_counterpart() {
    // Failing one quadrant's base stations must lose some traffic (cars
    // do drive there) but strictly less than failing all of them over the
    // same window.
    let sc = base_scenario(43);
    let side = sc.space_side;
    let quadrant = Rect::from_coords(0.0, 0.0, side / 2.0, side / 2.0);
    let run = |outage: Outage| {
        let sc = base_scenario(43).with_faults(FaultProfile {
            outages: vec![outage],
            ..FaultProfile::none()
        });
        run_scenario(&sc, &[Policy::Lira]).outcomes[0].clone()
    };
    let regional = run(Outage::regional(30.0, 60.0, quadrant));
    let global = run(Outage::window(30.0, 60.0));
    assert!(
        regional.faults.lost > 0,
        "cars inside the quadrant must lose updates: {:?}",
        regional.faults
    );
    assert!(
        regional.faults.lost < global.faults.lost,
        "a quadrant outage cannot lose as much as a global one: {} vs {}",
        regional.faults.lost,
        global.faults.lost
    );
    // Less lost traffic must not make accuracy *worse* than the global
    // blackout (generous tolerance: different loss patterns shift the
    // evaluation rounds they land in).
    assert!(regional.metrics.mean_position <= global.metrics.mean_position * 1.1);
}

#[test]
fn outage_boundaries_are_start_inclusive_end_exclusive() {
    // Regression pin for the window convention, global and regional: a
    // transmission at exactly `start_s` is lost, one at exactly `end_s`
    // goes through.
    let region = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
    let inside = Point::new(50.0, 50.0);
    let profile = FaultProfile {
        outages: vec![
            Outage::window(10.0, 20.0),
            Outage::regional(30.0, 40.0, region),
        ],
        ..FaultProfile::none()
    };
    let mut ch: FaultyChannel<u32> = FaultyChannel::new(profile, 5);
    ch.send(10.0, 1); // global start: lost
    ch.send(20.0, 2); // global end: delivered
    ch.send_from(30.0, inside, 3); // regional start, inside: lost
    ch.send_from(40.0, inside, 4); // regional end, inside: delivered
    ch.send_from(35.0, Point::new(500.0, 500.0), 5); // mid-window, outside: delivered
                                                     // Ordered by delivery time: 2 at 20.0, 5 at 35.0, 4 at 40.0.
    let got: Vec<u32> = ch.drain(50.0).into_iter().map(|d| d.payload).collect();
    assert_eq!(got, vec![2, 5, 4]);
    let stats = ch.stats();
    assert_eq!(stats.lost, 2);
    assert_eq!(stats.rng_draws, 0, "outage decisions must not draw RNG");
}

#[test]
fn retry_backoff_chain_across_outage_edges_is_pinned() {
    // A send inside one outage whose retry cadence walks straight into a
    // second window: attempts at 5.5 (lost, in [5,6)), 10.0 (lost —
    // start-inclusive), 14.5 and 19.0 (lost, inside [10,20)), and 23.5
    // (clear air, delivered). The update survives with exactly 4 retries
    // and arrives at 23.5, 18 s stale.
    let profile = FaultProfile {
        outages: vec![Outage::window(5.0, 6.0), Outage::window(10.0, 20.0)],
        retry: RetryPolicy {
            max_retries: 4,
            backoff_s: 4.5,
        },
        ..FaultProfile::none()
    };
    let mut ch: FaultyChannel<u32> = FaultyChannel::new(profile, 5);
    ch.send(5.5, 7);
    assert!(ch.poll(23.4).is_empty(), "nothing may arrive early");
    // Poll (not drain): drain would abandon the queued 23.5 retry.
    let got = ch.poll(30.0);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, 7);
    assert_eq!(got[0].sent_at, 5.5);
    assert_eq!(got[0].delivered_at, 23.5);
    let stats = ch.stats();
    assert_eq!((stats.delivered, stats.retries, stats.lost), (1, 4, 0));
    assert_eq!(stats.transmissions, 5);
    // One retry fewer and the 19.0 attempt is the last: the update dies
    // inside the second window instead.
    let profile = FaultProfile {
        outages: vec![Outage::window(5.0, 6.0), Outage::window(10.0, 20.0)],
        retry: RetryPolicy {
            max_retries: 3,
            backoff_s: 4.5,
        },
        ..FaultProfile::none()
    };
    let mut ch: FaultyChannel<u32> = FaultyChannel::new(profile, 5);
    ch.send(5.5, 7);
    assert!(ch.poll(30.0).is_empty());
    assert_eq!(ch.stats().lost, 1);
    assert_eq!(ch.stats().retries, 3);
}

#[test]
fn regional_blackout_scenario_end_to_end_accounting_holds() {
    // The catalog's regional-blackout composition (iid loss + regional
    // outage + retries) through the full pipeline: conservation laws and
    // determinism must survive the stacked fault models.
    let sc = NamedScenario::RegionalBlackout.tiny(61);
    let a = run_scenario(&sc, &Policy::ALL);
    let b = run_scenario(&sc, &Policy::ALL);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_outcomes_identical(oa, ob, oa.policy.name());
        assert_eq!(oa.faults, ob.faults, "{}: fault books", oa.policy.name());
        assert!(
            oa.faults.accounted(),
            "{}: {:?}",
            oa.policy.name(),
            oa.faults
        );
        assert!(
            oa.faults.lost > 0,
            "{}: the blackout must lose traffic",
            oa.policy.name()
        );
        assert!(oa.faults.retries > 0, "{}", oa.policy.name());
    }
}

#[test]
fn delay_reordering_keeps_metrics_finite_and_bounded() {
    // Heavy reordering (delays far beyond the update cadence) stresses
    // the node store's stale-rejection path; the run must stay sane:
    // finite errors, monotone accounting, staleness within the delay
    // bound.
    let sc = base_scenario(83).with_faults(FaultProfile {
        delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 8.0,
        },
        ..FaultProfile::none()
    });
    let report = run_scenario(&sc, &[Policy::Lira, Policy::UniformDelta]);
    for o in &report.outcomes {
        assert!(o.metrics.mean_containment.is_finite());
        assert!(o.metrics.mean_position.is_finite());
        assert!(o.faults.accounted(), "{:?}", o.faults);
        assert!(
            o.faults.mean_staleness_s > 0.0 && o.faults.mean_staleness_s < 8.0,
            "staleness {} outside the delay envelope",
            o.faults.mean_staleness_s
        );
        // Delayed-but-delivered updates may be rejected as stale, never
        // invented: processed ≤ delivered.
        assert!(o.updates_processed <= o.faults.delivered);
    }
}
