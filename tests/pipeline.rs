//! Integration tests of the distribution pipeline: server plan → base
//! stations → wire encoding → mobile nodes, plus dead-reckoning round
//! trips between mobile and server state.

use lira::prelude::*;

/// A deterministic heterogeneous statistics grid for plan construction.
fn demo_grid(bounds: Rect, alpha: usize) -> StatsGrid {
    let mut grid = StatsGrid::new(alpha, bounds).unwrap();
    grid.begin_snapshot();
    // Dense, slow cluster in the SW; sparse, fast traffic in the NE.
    for i in 0..400 {
        let p = Point::new(
            bounds.width() * 0.05 + (i % 20) as f64 * bounds.width() * 0.01,
            bounds.height() * 0.05 + (i / 20) as f64 * bounds.height() * 0.01,
        );
        grid.observe_node(&p, 6.0, 1.0);
    }
    for i in 0..40 {
        let p = Point::new(
            bounds.width() * (0.6 + 0.01 * (i % 8) as f64),
            bounds.height() * (0.6 + 0.01 * (i / 8) as f64),
        );
        grid.observe_node(&p, 25.0, 1.0);
    }
    for i in 0..12 {
        let x = bounds.width() * (0.55 + 0.03 * (i % 4) as f64);
        let y = bounds.height() * (0.55 + 0.03 * (i / 4) as f64);
        grid.observe_query(&Rect::from_coords(
            x,
            y,
            x + bounds.width() * 0.05,
            y + bounds.height() * 0.05,
        ));
    }
    grid.commit_snapshot();
    grid
}

#[test]
fn plan_distribution_round_trip_preserves_lookups() {
    let bounds = Rect::from_coords(0.0, 0.0, 8192.0, 8192.0);
    let grid = demo_grid(bounds, 64);
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(40);
    let shedder = LiraShedder::new(config.clone(), 500).unwrap();
    let plan = shedder.adapt_with_throttle(&grid, 0.4).unwrap().plan;

    // Base stations on a uniform grid with 1.5 km radius.
    let stations = uniform_placement(&bounds, 1500.0);
    assert!(!stations.is_empty());

    // For a probe set of points: resolve via station → wire → mobile node
    // and compare against the server plan.
    for i in 0..40 {
        for j in 0..40 {
            let p = Point::new(i as f64 * 200.0 + 17.0, j as f64 * 200.0 + 13.0);
            let sid = station_for(&stations, &p).unwrap();
            let subset = plan.subset_for(&stations[sid as usize].coverage);
            let wire = SheddingPlan::new(bounds, subset, config.delta_min).encode();
            let received = SheddingPlan::decode(bounds, &wire, config.delta_min).unwrap();
            let mobile = MobileShedder::install(0, received.regions().to_vec(), config.delta_min);
            let local = mobile.throttler_at(&p);
            let server = plan.throttler_at(&p);
            assert!(
                (local - server).abs() < 1e-3,
                "at {p}: mobile {local} vs server {server}"
            );
        }
    }
}

#[test]
fn station_subsets_cover_their_disks() {
    let bounds = Rect::from_coords(0.0, 0.0, 8192.0, 8192.0);
    let grid = demo_grid(bounds, 64);
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(25);
    let shedder = LiraShedder::new(config, 500).unwrap();
    let plan = shedder.adapt_with_throttle(&grid, 0.5).unwrap().plan;
    for station in uniform_placement(&bounds, 2000.0) {
        let subset = plan.subset_for(&station.coverage);
        // Every plan region intersecting the disk must be in the subset.
        let expected = plan
            .regions()
            .iter()
            .filter(|r| station.coverage.intersects_rect(&r.area))
            .count();
        assert_eq!(subset.len(), expected);
    }
}

#[test]
fn dead_reckoning_keeps_server_within_delta() {
    // The fundamental dead-reckoning contract across the mobile and server
    // crates: at every observation instant, the server's prediction is
    // within the node's threshold of its true position.
    let net = generate_network(&NetworkConfig::small(3));
    let bounds = *net.bounds();
    let demand = TrafficDemand::random_hotspots(&bounds, 2, 3);
    let mut sim = TrafficSimulator::new(
        net,
        &demand,
        TrafficConfig {
            num_cars: 30,
            seed: 3,
        },
    );
    let mut server = CqServer::new(bounds, 30, 16);
    let mut reckoners = vec![DeadReckoner::new(); 30];
    let delta = 25.0;
    for _ in 0..300 {
        sim.step(1.0);
        let t = sim.time();
        for (i, car) in sim.cars().iter().enumerate() {
            if let Some(rep) =
                reckoners[i].observe(i as u32, t, car.position(), car.velocity(), delta)
            {
                server.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
            }
            let predicted = server.predict(i as u32, t).expect("first tick reports");
            let true_pos = car.position();
            assert!(
                predicted.distance(&true_pos) <= delta + 1e-6,
                "node {i}: prediction off by {}",
                predicted.distance(&true_pos)
            );
        }
    }
}

#[test]
fn reference_and_shed_servers_agree_at_z_one() {
    // With z = 1 the plan is Δ⊢ everywhere: both servers see identical
    // update streams, so all error metrics must be exactly zero.
    let mut sc = Scenario::small(19);
    sc.throttle = 1.0;
    sc.duration_s = 60.0;
    let report = run_scenario(&sc, &[Policy::Lira, Policy::UniformDelta]);
    for o in &report.outcomes {
        assert_eq!(
            o.metrics.mean_containment, 0.0,
            "{:?} containment at z=1",
            o.policy
        );
        assert_eq!(
            o.metrics.mean_position, 0.0,
            "{:?} position at z=1",
            o.policy
        );
        assert_eq!(o.updates_processed, report.reference_updates);
    }
}

#[test]
fn parallel_lanes_are_bit_identical_to_sequential() {
    // The pipeline's determinism contract: with two or more policies the
    // lanes run on scoped threads, and the report must still match a
    // forced single-threaded run bit for bit — every lane derives its RNG
    // from the scenario seed and its policy index, and shares no mutable
    // state. Only the wall-clock `adapt_micros` may differ between modes.
    let mut sc = Scenario::small(23);
    sc.duration_s = 90.0;
    let parallel = SimPipeline::new().run(&sc, &Policy::ALL);
    let sequential = SimPipeline::new()
        .with_parallelism(Parallelism::Sequential)
        .run(&sc, &Policy::ALL);

    assert_eq!(parallel.reference_updates, sequential.reference_updates);
    assert_eq!(parallel.num_queries, sequential.num_queries);
    assert_eq!(parallel.outcomes.len(), sequential.outcomes.len());
    for (p, s) in parallel.outcomes.iter().zip(&sequential.outcomes) {
        assert_eq!(p.policy, s.policy);
        assert_eq!(
            p.updates_sent, s.updates_sent,
            "{:?} updates sent",
            p.policy
        );
        assert_eq!(
            p.updates_processed, s.updates_processed,
            "{:?} processed",
            p.policy
        );
        for (label, a, b) in [
            (
                "E^C_rr",
                p.metrics.mean_containment,
                s.metrics.mean_containment,
            ),
            ("E^P_rr", p.metrics.mean_position, s.metrics.mean_position),
            (
                "D^C_ev",
                p.metrics.stddev_containment,
                s.metrics.stddev_containment,
            ),
            (
                "C^C_ov",
                p.metrics.cov_containment,
                s.metrics.cov_containment,
            ),
            (
                "processed fraction",
                p.processed_fraction,
                s.processed_fraction,
            ),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{:?} {label}: parallel {a} vs sequential {b}",
                p.policy
            );
        }
    }
}

#[test]
fn unified_engine_run_report_is_bit_identical_to_legacy() {
    // The acceptance bar for the unified engine: for a fixed-seed
    // scenario, the whole multi-policy report must match the legacy
    // per-query oracle bit for bit — policy outcomes, update counts,
    // fault accounting, plan sizes. Only wall-clock fields
    // (`adapt_micros`, telemetry snapshots) are exempt.
    let mut sc = Scenario::small(31);
    sc.duration_s = 90.0;
    let unified = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 1 })
        .run(&sc, &Policy::ALL);
    let legacy = SimPipeline::new()
        .with_engine(EvalEngine::Legacy)
        .run(&sc, &Policy::ALL);

    assert_eq!(unified.reference_updates, legacy.reference_updates);
    assert_eq!(unified.num_queries, legacy.num_queries);
    assert_eq!(unified.num_cars, legacy.num_cars);
    assert_eq!(unified.outcomes.len(), legacy.outcomes.len());
    for (i, l) in unified.outcomes.iter().zip(&legacy.outcomes) {
        assert_eq!(i.policy, l.policy);
        assert_eq!(i.updates_sent, l.updates_sent, "{:?} sent", i.policy);
        assert_eq!(
            i.updates_processed, l.updates_processed,
            "{:?} processed",
            i.policy
        );
        assert_eq!(i.plan_regions, l.plan_regions, "{:?} regions", i.policy);
        assert_eq!(i.faults, l.faults, "{:?} faults", i.policy);
        for (label, a, b) in [
            (
                "E^C_rr",
                i.metrics.mean_containment,
                l.metrics.mean_containment,
            ),
            ("E^P_rr", i.metrics.mean_position, l.metrics.mean_position),
            (
                "D^C_ev",
                i.metrics.stddev_containment,
                l.metrics.stddev_containment,
            ),
            (
                "C^C_ov",
                i.metrics.cov_containment,
                l.metrics.cov_containment,
            ),
            (
                "processed fraction",
                i.processed_fraction,
                l.processed_fraction,
            ),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{:?} {label}: unified {a} vs legacy {b}",
                i.policy
            );
        }
    }
}

#[test]
fn shard_counts_yield_bit_identical_run_reports() {
    // The acceptance bar for the striped unified engine: the whole
    // multi-policy report must match the shards = 1 degenerate case bit
    // for bit at every shard count, including one (3) that leaves
    // stripes of unequal width.
    let mut sc = Scenario::small(41);
    sc.duration_s = 90.0;
    let baseline = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 1 })
        .run(&sc, &Policy::ALL);

    for shards in [2usize, 3, 4, 8] {
        let striped = SimPipeline::new()
            .with_engine(EvalEngine::Unified { shards })
            .run(&sc, &Policy::ALL);
        assert_eq!(striped.reference_updates, baseline.reference_updates);
        assert_eq!(striped.num_queries, baseline.num_queries);
        assert_eq!(striped.outcomes.len(), baseline.outcomes.len());
        for (s, i) in striped.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(s.policy, i.policy);
            assert_eq!(
                s.updates_sent, i.updates_sent,
                "{shards} {:?} sent",
                s.policy
            );
            assert_eq!(
                s.updates_processed, i.updates_processed,
                "{shards} {:?} processed",
                s.policy
            );
            assert_eq!(
                s.plan_regions, i.plan_regions,
                "{shards} {:?} regions",
                s.policy
            );
            assert_eq!(s.faults, i.faults, "{shards} {:?} faults", s.policy);
            assert_eq!(s.metrics, i.metrics, "{shards} {:?} metrics", s.policy);
            assert_eq!(
                s.processed_fraction.to_bits(),
                i.processed_fraction.to_bits(),
                "{shards} {:?} processed fraction",
                s.policy
            );
        }
    }
}

#[test]
fn sequential_parallelism_inlines_striped_evaluation() {
    // `Parallelism::Sequential` must mean *no* spawned threads anywhere:
    // the unified engine's phases run on the calling thread, and the
    // report still matches the pooled run bit for bit.
    let mut sc = Scenario::small(43);
    sc.duration_s = 60.0;
    let pooled = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 4 })
        .run(&sc, &Policy::ALL);
    let inline = SimPipeline::new()
        .with_engine(EvalEngine::Unified { shards: 4 })
        .with_parallelism(Parallelism::Sequential)
        .run(&sc, &Policy::ALL);
    assert_eq!(pooled.reference_updates, inline.reference_updates);
    for (p, s) in pooled.outcomes.iter().zip(&inline.outcomes) {
        assert_eq!(p.policy, s.policy);
        assert_eq!(p.metrics, s.metrics, "{:?} metrics", p.policy);
        assert_eq!(p.updates_sent, s.updates_sent, "{:?} sent", p.policy);
        assert_eq!(
            p.updates_processed, s.updates_processed,
            "{:?} processed",
            p.policy
        );
    }
}

#[test]
fn adaptive_report_is_bit_identical_across_engines() {
    // Same bar for the closed loop: THROTLOOP's whole trajectory (window
    // stats, final throttle, drop fraction) and the accuracy metrics must
    // not move when the engine changes.
    let mut sc = Scenario::small(37);
    sc.num_cars = 200;
    sc.duration_s = 120.0;
    let cfg = AdaptiveConfig {
        service_rate: 60.0,
        queue_capacity: 300,
        control_period_s: 20.0,
    };
    let unified = run_adaptive_with_engine(&sc, &cfg, EvalEngine::Unified { shards: 1 });
    let legacy = run_adaptive_with_engine(&sc, &cfg, EvalEngine::Legacy);
    let striped = run_adaptive_with_engine(&sc, &cfg, EvalEngine::Unified { shards: 4 });

    assert_eq!(unified.windows, legacy.windows);
    assert_eq!(
        unified.final_throttle.to_bits(),
        legacy.final_throttle.to_bits()
    );
    assert_eq!(
        unified.drop_fraction.to_bits(),
        legacy.drop_fraction.to_bits()
    );
    assert_eq!(unified.metrics, legacy.metrics);
    assert_eq!(unified.faults, legacy.faults);
    assert_eq!(striped.windows, unified.windows);
    assert_eq!(
        striped.final_throttle.to_bits(),
        unified.final_throttle.to_bits()
    );
    assert_eq!(
        striped.drop_fraction.to_bits(),
        unified.drop_fraction.to_bits()
    );
    assert_eq!(striped.metrics, unified.metrics);
    assert_eq!(striped.faults, unified.faults);
}

#[test]
fn table3_region_counts_grow_with_radius() {
    // Table 3's shape: stations with larger coverage know more regions.
    let bounds = Rect::from_coords(0.0, 0.0, 14_142.0, 14_142.0);
    let grid = demo_grid(bounds, 128);
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    let shedder = LiraShedder::new(config, 500).unwrap();
    let plan = shedder.adapt_with_throttle(&grid, 0.5).unwrap().plan;
    // A fixed station growing its radius sees a superset of regions:
    // strictly monotone counts.
    let center = bounds.center();
    let mut prev = 0usize;
    for radius_km in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let n = plan
            .subset_for(&Circle::new(center, radius_km * 1000.0))
            .len();
        assert!(
            n > prev,
            "radius {radius_km} km: {n} regions not more than {prev}"
        );
        prev = n;
    }
    // Across a whole placement the mean also grows from the smallest to
    // the largest radius (per-step counts can wobble as station positions
    // shift with the grid pitch).
    let small = mean_regions_per_station(&uniform_placement(&bounds, 1000.0), &plan);
    let large = mean_regions_per_station(&uniform_placement(&bounds, 5000.0), &plan);
    assert!(large > 2.0 * small, "1 km: {small}, 5 km: {large}");
}

#[test]
fn uncertain_evaluation_guarantees_hold_end_to_end() {
    // Drive real traffic through dead reckoning under a LIRA plan and
    // check the three-valued membership guarantees against the TRUE
    // positions: `must` nodes are truly inside; every truly-inside node is
    // in `must ∪ maybe`.
    let net = generate_network(&NetworkConfig::small(47));
    let bounds = *net.bounds();
    let demand = TrafficDemand::random_hotspots(&bounds, 2, 47);
    let mut sim = TrafficSimulator::new(
        net,
        &demand,
        TrafficConfig {
            num_cars: 120,
            seed: 47,
        },
    );
    for _ in 0..45 {
        sim.step(1.0);
    }

    // A LIRA plan over the warmed statistics.
    let mut config = LiraConfig::default();
    config.bounds = bounds;
    config = config.with_regions(13);
    let mut grid = StatsGrid::new(config.alpha, bounds).unwrap();
    grid.begin_snapshot();
    for car in sim.cars() {
        grid.observe_node(&car.position(), car.speed(), 1.0);
    }
    grid.observe_query(&Rect::from_coords(400.0, 400.0, 1200.0, 1200.0));
    grid.commit_snapshot();
    let shedder = LiraShedder::new(config.clone(), 100).unwrap();
    let plan = shedder.adapt_with_throttle(&grid, 0.4).unwrap().plan;

    let mut server = CqServer::new(bounds, 120, 16);
    server.register_queries([
        RangeQuery {
            id: 0,
            range: Rect::from_coords(400.0, 400.0, 1200.0, 1200.0),
        },
        RangeQuery {
            id: 1,
            range: Rect::from_coords(0.0, 1000.0, 900.0, 2000.0),
        },
    ]);
    let queries = server.queries().to_vec();
    let mut reckoners = vec![DeadReckoner::new(); 120];

    for tick in 0..240 {
        sim.step(1.0);
        let t = sim.time();
        for (i, car) in sim.cars().iter().enumerate() {
            let delta = plan.throttler_at(&car.position());
            if let Some(rep) =
                reckoners[i].observe(i as u32, t, car.position(), car.velocity(), delta)
            {
                server.ingest(rep.node, t, rep.model.origin, rep.model.velocity);
            }
        }
        if tick % 20 != 0 {
            continue;
        }
        // The node's threshold comes from its *true* region, which the
        // server does not know; the sound bound is the max throttler of any
        // region within Δ⊣ of the prediction.
        let results = server.evaluate_uncertain(t, config.delta_max, |_, p| {
            plan.max_throttler_within(&p, config.delta_max)
        });
        for (q, r) in queries.iter().zip(&results) {
            for &n in &r.must {
                let truth = sim.cars()[n as usize].position();
                assert!(
                    q.range.expand(1e-6).contains_closed(&truth),
                    "tick {tick}: must-node {n} truly at {truth}, outside {:?}",
                    q.range
                );
            }
            for (n, car) in sim.cars().iter().enumerate() {
                if q.range.contains(&car.position()) {
                    let n = n as u32;
                    assert!(
                        r.must.binary_search(&n).is_ok() || r.maybe.binary_search(&n).is_ok(),
                        "tick {tick}: node {n} truly inside but in neither must nor maybe"
                    );
                }
            }
        }
    }
}
