//! Property-based tests of the core invariants, driven by proptest over
//! randomized instances. These guard the optimizer and partitioner against
//! the corner cases hand-written tests miss (degenerate regions, extreme
//! budgets, skewed statistics).

use lira::prelude::*;
use proptest::prelude::*;

/// Strategy for a random reduction model: random non-increasing knots
/// (plateaus allowed — calibrated models can have them).
fn reduction_model(kappa: usize) -> impl Strategy<Value = ReductionModel> {
    prop::collection::vec(0.0f64..1.0, kappa).prop_map(move |drops| {
        // Turn arbitrary values into a non-increasing sequence from 1.
        let total: f64 = drops.iter().sum::<f64>().max(1e-9);
        let mut knots = Vec::with_capacity(kappa + 1);
        let mut v = 1.0;
        knots.push(1.0);
        for d in &drops {
            v -= 0.95 * d / total; // keep f(delta_max) > 0
            knots.push(v.max(0.0));
        }
        ReductionModel::from_knots(5.0, 105.0, knots).expect("constructed monotone")
    })
}

/// Strategy for a *convex* decreasing reduction model (non-increasing
/// rate `r`, i.e. diminishing returns) — the actual setting of
/// Theorem 3.1's exchange argument, and the shape of Figure 1's empirical
/// curve. For non-convex `f` (a cheap plateau in front of a steep cliff)
/// *any* greedy — the paper's or ours — can be beaten when the budget
/// exhausts mid-commitment; that variant is a non-convex knapsack (see
/// `greedy_increment.rs` docs).
fn convex_reduction_model(kappa: usize) -> impl Strategy<Value = ReductionModel> {
    prop::collection::vec(0.05f64..1.0, kappa).prop_map(move |mut drops| {
        // Sorting the per-segment drops descending makes r non-increasing.
        drops.sort_by(|a, b| b.partial_cmp(a).expect("finite drops"));
        let total: f64 = drops.iter().sum::<f64>().max(1e-9);
        let mut knots = Vec::with_capacity(kappa + 1);
        let mut v = 1.0;
        knots.push(1.0);
        for d in &drops {
            v -= 0.95 * d / total;
            knots.push(v.max(0.0));
        }
        ReductionModel::from_knots(5.0, 105.0, knots).expect("constructed monotone")
    })
}

/// Strategy for random region statistics.
fn regions(max_len: usize) -> impl Strategy<Value = Vec<RegionInput>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..20.0, 0.0f64..30.0)
            .prop_map(|(n, m, s)| RegionInput::new(n, m, s)),
        1..max_len,
    )
}

fn expenditure(rs: &[RegionInput], deltas: &[f64], model: &ReductionModel, speed: bool) -> f64 {
    rs.iter()
        .zip(deltas)
        .map(|(r, d)| {
            let w = if speed { r.nodes * r.speed } else { r.nodes };
            w * model.f(*d)
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_solution_is_feasible_or_saturated(
        rs in regions(20),
        model in reduction_model(10),
        z in 0.05f64..1.0,
        fairness in 10.0f64..100.0,
        use_speed in any::<bool>(),
    ) {
        let params = GreedyParams { throttle: z, fairness, use_speed };
        let sol = greedy_increment(&rs, &model, &params);

        // Domain constraint (iii): Δ⊢ ≤ Δᵢ ≤ Δ⊣.
        for &d in &sol.deltas {
            prop_assert!(d >= model.delta_min() - 1e-9 && d <= model.delta_max() + 1e-9);
        }

        // Fairness constraint (ii): max spread ≤ Δ⇔.
        let max = sol.deltas.iter().cloned().fold(f64::MIN, f64::max);
        let min = sol.deltas.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(max - min <= fairness + 1e-6, "spread {} > {}", max - min, fairness);

        // Budget constraint (i) when met; internal accounting consistent.
        let exp = expenditure(&rs, &sol.deltas, &model, use_speed);
        prop_assert!((exp - sol.expenditure).abs() <= 1e-6 * exp.max(1.0),
            "reported {} vs recomputed {}", sol.expenditure, exp);
        if sol.budget_met {
            prop_assert!(exp <= sol.budget * (1.0 + 1e-6) + 1e-9,
                "expenditure {} > budget {}", exp, sol.budget);
        } else {
            // Saturated: every throttler is at its fairness-capped maximum.
            for &d in &sol.deltas {
                prop_assert!(d >= (min + fairness).min(model.delta_max()) - 1e-6);
            }
        }

        // Objective accounting.
        let inacc: f64 = sol.deltas.iter().zip(&rs).map(|(d, r)| r.queries * d).sum();
        prop_assert!((inacc - sol.inaccuracy).abs() <= 1e-9 * inacc.max(1.0));
    }

    #[test]
    fn greedy_inaccuracy_monotone_in_budget(
        rs in regions(12),
        model in reduction_model(8),
        z in 0.05f64..0.9,
    ) {
        // A larger budget can never force a worse objective.
        let lo = greedy_increment(&rs, &model, &GreedyParams::unconstrained(z, true));
        let hi = greedy_increment(&rs, &model, &GreedyParams::unconstrained((z + 0.1).min(1.0), true));
        prop_assert!(hi.inaccuracy <= lo.inaccuracy + 1e-6,
            "z={z}: inaccuracy {} at larger budget vs {}", hi.inaccuracy, lo.inaccuracy);
    }

    #[test]
    fn greedy_matches_exhaustive_lattice_optimum(
        rs in prop::collection::vec(
            (1.0f64..500.0, 0.0f64..10.0, 1.0f64..30.0)
                .prop_map(|(n, m, s)| RegionInput::new(n, m, s)),
            2..4,
        ),
        model in convex_reduction_model(4),
        z in 0.2f64..0.95,
    ) {
        // Theorem 3.1 on random instances: greedy (fairness disabled) is at
        // least as good as every feasible knot-lattice assignment.
        let params = GreedyParams::unconstrained(z, true);
        let sol = greedy_increment(&rs, &model, &params);
        prop_assume!(sol.budget_met);
        let total_w: f64 = rs.iter().map(|r| r.nodes * r.speed).sum();
        let budget = z * total_w;
        let kappa = model.kappa();
        let mut best = f64::INFINITY;
        // Exhaustive over the (kappa+1)^len lattice (len <= 3, kappa = 4).
        let len = rs.len();
        let mut idx = vec![0usize; len];
        loop {
            let ds: Vec<f64> = idx.iter().map(|&k| model.knot_delta(k)).collect();
            let exp: f64 = rs
                .iter()
                .zip(&ds)
                .map(|(r, d)| r.nodes * r.speed * model.f(*d))
                .sum();
            if exp <= budget * (1.0 + 1e-9) {
                let obj: f64 = rs.iter().zip(&ds).map(|(r, d)| r.queries * d).sum();
                best = best.min(obj);
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == len {
                    break;
                }
                idx[i] += 1;
                if idx[i] <= kappa {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
            if i == len {
                break;
            }
        }
        prop_assert!(
            sol.inaccuracy <= best + 1e-6,
            "greedy {} worse than exhaustive {best}",
            sol.inaccuracy
        );
    }

    #[test]
    fn reduction_model_invariants(model in reduction_model(12), d in 5.0f64..105.0, y in 0.0f64..1.2) {
        // f in [0, 1], non-increasing, r non-negative.
        let f = model.f(d);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        prop_assert!(model.r(d) >= -1e-12);
        prop_assert!(model.f(d) >= model.f((d + 1.0).min(model.delta_max())) - 1e-12);
        // Inverse: result always satisfies the budget or saturates at max.
        let inv = model.min_delta_for_budget(y);
        prop_assert!(inv >= model.delta_min() && inv <= model.delta_max());
        if model.f(model.delta_max()) <= y {
            prop_assert!(model.f(inv) <= y + 1e-9, "f({inv}) = {} > {y}", model.f(inv));
        } else {
            prop_assert!((inv - model.delta_max()).abs() < 1e-12);
        }
    }
}

/// Pinned proptest counterexample (formerly persisted in
/// `properties.proptest-regressions`; the vendored generation-only
/// proptest shim never replays that file, so the case lives here as a
/// named test instead).
///
/// Proptest found this instance when `greedy_matches_exhaustive_lattice
/// _optimum` still ran over arbitrary non-increasing models: `f` is a
/// flat plateau (`f = 1` up to Δ = 80) followed by a cliff down to 0.05,
/// which is maximally *non-convex*. Crossing the plateau costs inaccuracy
/// without reducing load, so a naive next-knot greedy stalls on zero
/// gains and was beaten by the exhaustive lattice optimum here. The
/// *max-secant* gain computation fixed this instance — it prices a step
/// by the best secant slope to any later knot, so it sees across the
/// plateau to the cliff, and with continuous (mid-segment) stops it now
/// strictly beats the knot lattice on this workload. Non-convex models
/// in general remain a non-convex knapsack where greedy carries no
/// optimality guarantee (hence the convex restriction on the lattice
/// property above; see also the `greedy_increment.rs` module docs).
///
/// This test pins two things on the counterexample: (a) the solution
/// satisfies every feasibility invariant — optimality may be forfeited
/// on non-convex models, feasibility never is — and (b) the max-secant
/// plateau handling does not regress: greedy must stay at least as good
/// as the exhaustive knot-lattice optimum on this instance.
#[test]
fn nonconvex_cliff_model_regression_stays_feasible_and_beats_lattice() {
    let rs = [
        RegionInput::new(213.46372074371246, 8.064587140221777, 23.861618936213063),
        RegionInput::new(361.64285692232323, 6.618431343035539, 1.0),
        RegionInput::new(266.083799567616, 9.019998749055278, 23.448672982450226),
    ];
    let model = ReductionModel::from_knots(5.0, 105.0, vec![1.0, 1.0, 1.0, 1.0, 0.05]).unwrap();
    let z = 0.2;
    let sol = greedy_increment(&rs, &model, &GreedyParams::unconstrained(z, true));

    // (a) Feasibility invariants hold even on the adversarial model.
    assert!(sol.budget_met);
    for &d in &sol.deltas {
        assert!(d >= model.delta_min() - 1e-9 && d <= model.delta_max() + 1e-9);
    }
    let exp = expenditure(&rs, &sol.deltas, &model, true);
    assert!(
        (exp - sol.expenditure).abs() <= 1e-6 * exp.max(1.0),
        "reported {} vs recomputed {exp}",
        sol.expenditure
    );
    assert!(exp <= sol.budget * (1.0 + 1e-6), "{exp} > {}", sol.budget);

    // (b) The exhaustive knot-lattice optimum: with weights w = n·s of
    // roughly (5094, 362, 6239) and budget 0.2·Σw ≈ 2339, the only
    // feasible lattice shape is "push two regions off the cliff";
    // keeping the light region 1 at Δ⊢ is lattice-optimal
    // (inaccuracy ≈ 1827). Greedy does strictly better (≈ 1768) by
    // stopping region 2 partway down the cliff instead of at the knot.
    let kappa = model.kappa();
    let budget = sol.budget;
    let mut best = f64::INFINITY;
    let mut idx = [0usize; 3];
    loop {
        let ds: [f64; 3] = [
            model.knot_delta(idx[0]),
            model.knot_delta(idx[1]),
            model.knot_delta(idx[2]),
        ];
        let exp: f64 = rs
            .iter()
            .zip(&ds)
            .map(|(r, d)| r.nodes * r.speed * model.f(*d))
            .sum();
        if exp <= budget * (1.0 + 1e-9) {
            let obj: f64 = rs.iter().zip(&ds).map(|(r, d)| r.queries * d).sum();
            best = best.min(obj);
        }
        let mut i = 0;
        loop {
            if i == 3 {
                break;
            }
            idx[i] += 1;
            if idx[i] <= kappa {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
        if i == 3 {
            break;
        }
    }
    assert!(best.is_finite());
    assert!(
        sol.inaccuracy <= best + 1e-6,
        "greedy ({}) trails the lattice optimum ({best}) again on the \
         non-convex counterexample — the max-secant plateau handling \
         regressed",
        sol.inaccuracy
    );
}

/// Random statistics grids for partitioning properties.
fn arbitrary_grid() -> impl Strategy<Value = StatsGrid> {
    (
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..30.0), 0..300),
        prop::collection::vec((0.0f64..0.9, 0.0f64..0.9, 0.01f64..0.1), 0..30),
    )
        .prop_map(|(nodes, queries)| {
            let bounds = Rect::from_coords(0.0, 0.0, 4096.0, 4096.0);
            let mut g = StatsGrid::new(32, bounds).unwrap();
            g.begin_snapshot();
            for (x, y, s) in nodes {
                g.observe_node(&Point::new(x * 4096.0, y * 4096.0), s, 1.0);
            }
            for (x, y, w) in queries {
                let side = w * 4096.0;
                g.observe_query(&Rect::from_coords(
                    x * 4096.0,
                    y * 4096.0,
                    x * 4096.0 + side,
                    y * 4096.0 + side,
                ));
            }
            g.commit_snapshot();
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grid_reduce_partitioning_invariants(
        grid in arbitrary_grid(),
        steps in 0usize..30,
        z in 0.1f64..1.0,
    ) {
        let l = 1 + 3 * steps; // l mod 3 = 1 by construction
        let model = ReductionModel::analytic(5.0, 100.0, 19);
        let params = GridReduceParams::new(l, z, 50.0, true);
        let p = grid_reduce(&grid, &model, &params).unwrap();

        // Exactly l regions (the hierarchy always has enough leaves here).
        prop_assert_eq!(p.regions.len(), l);

        // Tiling: areas sum to the space, pairwise disjoint.
        let total: f64 = p.regions.iter().map(|r| r.area.area()).sum();
        prop_assert!((total - grid.bounds().area()).abs() < 1e-3);
        for i in 0..p.regions.len() {
            for j in (i + 1)..p.regions.len() {
                prop_assert!(!p.regions[i].area.intersects(&p.regions[j].area));
            }
        }

        // Statistics conservation.
        let n: f64 = p.regions.iter().map(|r| r.nodes).sum();
        let m: f64 = p.regions.iter().map(|r| r.queries).sum();
        prop_assert!((n - grid.total_nodes()).abs() < 1e-6);
        prop_assert!((m - grid.total_queries()).abs() < 1e-6);
    }

    #[test]
    fn plan_lookup_matches_linear_scan(
        grid in arbitrary_grid(),
        steps in 0usize..20,
        probe in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 20),
    ) {
        let l = 1 + 3 * steps;
        let model = ReductionModel::analytic(5.0, 100.0, 19);
        let params = GridReduceParams::new(l, 0.5, 50.0, true);
        let partitioning = grid_reduce(&grid, &model, &params).unwrap();
        let solution = greedy_increment(
            &partitioning.inputs(),
            &model,
            &GreedyParams { throttle: 0.5, fairness: 50.0, use_speed: true },
        );
        let plan = SheddingPlan::from_solution(*grid.bounds(), &partitioning, &solution, 5.0).unwrap();
        for (x, y) in probe {
            let p = Point::new(x * 4096.0, y * 4096.0);
            let scan = plan
                .regions()
                .iter()
                .find(|r| r.area.contains(&p))
                .map(|r| r.throttler)
                .unwrap_or(5.0);
            prop_assert_eq!(plan.throttler_at(&p), scan, "at {}", p);
        }
    }

    #[test]
    fn wire_round_trip_is_lossless_to_f32(
        grid in arbitrary_grid(),
        steps in 0usize..15,
    ) {
        let l = 1 + 3 * steps;
        let model = ReductionModel::analytic(5.0, 100.0, 19);
        let params = GridReduceParams::new(l, 0.4, 50.0, false);
        let partitioning = grid_reduce(&grid, &model, &params).unwrap();
        let solution = greedy_increment(
            &partitioning.inputs(),
            &model,
            &GreedyParams::unconstrained(0.4, false),
        );
        let plan = SheddingPlan::from_solution(*grid.bounds(), &partitioning, &solution, 5.0).unwrap();
        let decoded = SheddingPlan::decode(*plan.bounds(), &plan.encode(), 5.0).unwrap();
        prop_assert_eq!(plan.len(), decoded.len());
        for (a, b) in plan.regions().iter().zip(decoded.regions()) {
            prop_assert!((a.throttler - b.throttler).abs() < 1e-4);
            prop_assert!((a.area.min.x - b.area.min.x).abs() < 0.5);
            prop_assert!((a.area.width() - b.area.width()).abs() < 0.5);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The `SheddingPolicy` contract, checked uniformly for all six
    /// implementations: every plan stays inside the throttler domain
    /// `[Δ⊢, Δ⊣]`, and the *expected* post-shedding update rate — the
    /// speed-weighted `Σ_c s_c·f(Δ(center_c))` over the statistics-grid
    /// cells, scaled by the server-side admission probability — meets the
    /// budget `z`. Cells are the granularity at which every partitioner
    /// attributes nodes to regions, so this recomputation is exact.
    #[test]
    fn every_policy_respects_domain_and_budget(
        nodes in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.5f64..30.0), 50..250),
        queries in prop::collection::vec((0.0f64..0.9, 0.0f64..0.9, 0.01f64..0.1), 1..20),
        z in 0.3f64..0.95,
    ) {
        let bounds = Rect::from_coords(0.0, 0.0, 4096.0, 4096.0);
        let mut config = LiraConfig::default();
        config.bounds = bounds;
        config = config.with_regions(25);
        let model = ReductionModel::analytic(config.delta_min, config.delta_max, config.kappa());
        let mut grid = StatsGrid::new(config.alpha, bounds).unwrap();
        grid.begin_snapshot();
        for &(x, y, s) in &nodes {
            grid.observe_node(&Point::new(x * 4096.0, y * 4096.0), s, 1.0);
        }
        for &(x, y, w) in &queries {
            let side = w * 4096.0;
            grid.observe_query(&Rect::from_coords(
                x * 4096.0,
                y * 4096.0,
                x * 4096.0 + side,
                y * 4096.0 + side,
            ));
        }
        grid.commit_snapshot();

        let policies: Vec<Box<dyn SheddingPolicy>> = vec![
            Box::new(LiraPolicy::new(config.clone(), 1000).unwrap().with_model(model.clone())),
            Box::new(LiraGridPolicy::new(config.clone(), model.clone())),
            Box::new(UniformDeltaPolicy::new(bounds, model.clone())),
            Box::new(RandomDropPolicy::new(bounds, config.delta_min)),
            Box::new(UtilityGreedy::new(config.clone(), model.clone())),
            Box::new(UtilityModel::new(config.clone(), model.clone())),
        ];
        for mut policy in policies {
            let plan = policy.adapt(&grid, z).unwrap();
            for r in plan.regions() {
                prop_assert!(
                    r.throttler >= config.delta_min - 1e-9
                        && r.throttler <= config.delta_max + 1e-9,
                    "{}: throttler {} outside [{}, {}]",
                    policy.name(), r.throttler, config.delta_min, config.delta_max
                );
            }
            let admission = policy.admission(z);
            prop_assert!((0.0..=1.0).contains(&admission));
            let mut total = 0.0;
            let mut expected = 0.0;
            for r in 0..config.alpha {
                for c in 0..config.alpha {
                    let cell = grid.cell(r, c);
                    if cell.nodes <= 0.0 {
                        continue;
                    }
                    let center = grid.cell_rect(r, c).center();
                    total += cell.speed_sum;
                    expected += cell.speed_sum * model.f(plan.throttler_at(&center));
                }
            }
            expected *= admission;
            prop_assert!(
                expected <= z * total * (1.0 + 1e-6) + 1e-6,
                "{}: expected update rate {} exceeds budget {}",
                policy.name(), expected, z * total
            );
        }
    }
}

/// Strategy for a batch of moving points with ids drawn from a small pool
/// (so updates overwrite and deletes hit existing entries).
fn moving_points(max: usize) -> impl Strategy<Value = Vec<(u32, f64, f64, f64, f64, f64)>> {
    prop::collection::vec(
        (
            0u32..64,
            0.0f64..100.0,
            0.0f64..4096.0,
            0.0f64..4096.0,
            -25.0f64..25.0,
            -25.0f64..25.0,
        ),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tpr_tree_matches_brute_force(
        ops in moving_points(150),
        qx in 0.0f64..3000.0,
        qy in 0.0f64..3000.0,
        side in 100.0f64..1500.0,
        t in 0.0f64..200.0,
    ) {
        let mut tree = TprTree::new(30.0);
        let mut latest: std::collections::HashMap<u32, MovingPoint> =
            std::collections::HashMap::new();
        // Apply updates in non-decreasing time order (dead-reckoning reports
        // are monotone per node; the store rejects reordered ones upstream).
        let mut ops = ops;
        ops.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        for (node, time, x, y, vx, vy) in ops {
            let p = MovingPoint {
                node,
                time,
                origin: Point::new(x, y),
                velocity: (vx, vy),
            };
            tree.update(p);
            latest.insert(node, p);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), latest.len());

        let range = Rect::from_coords(qx, qy, qx + side, qy + side);
        let mut got = tree.query(&range, t);
        got.sort_unstable();
        let mut want: Vec<u32> = latest
            .values()
            .filter(|p| range.contains(&p.position_at(t)))
            .map(|p| p.node)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn history_reconstruction_matches_last_model(
        reports in prop::collection::vec(
            (0.0f64..500.0, 0.0f64..1000.0, 0.0f64..1000.0, -10.0f64..10.0, -10.0f64..10.0),
            1..40,
        ),
        query_t in 0.0f64..600.0,
    ) {
        let mut reports = reports;
        reports.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut history = HistoryStore::new(1);
        for &(t, x, y, vx, vy) in &reports {
            history.record(0, t, Point::new(x, y), (vx, vy));
        }
        // Brute-force reference: the last report at or before query_t.
        let expected = reports
            .iter()
            .rfind(|r| r.0 <= query_t)
            .map(|&(t, x, y, vx, vy)| {
                Point::new(x + vx * (query_t - t), y + vy * (query_t - t))
            });
        let got = history.position_at(0, query_t);
        match (got, expected) {
            (Some(a), Some(b)) => {
                prop_assert!(a.distance(&b) < 1e-9, "{a} vs {b}");
            }
            (None, None) => {}
            other => prop_assert!(false, "mismatch: {:?}", other),
        }
    }

    #[test]
    fn mobile_shedder_agrees_with_plan_everywhere(
        grid in arbitrary_grid(),
        steps in 0usize..12,
        probes in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 15),
    ) {
        let l = 1 + 3 * steps;
        let model = ReductionModel::analytic(5.0, 100.0, 19);
        let params = GridReduceParams::new(l, 0.5, 50.0, true);
        let partitioning = grid_reduce(&grid, &model, &params).unwrap();
        let solution = greedy_increment(
            &partitioning.inputs(),
            &model,
            &GreedyParams { throttle: 0.5, fairness: 50.0, use_speed: true },
        );
        let plan =
            SheddingPlan::from_solution(*grid.bounds(), &partitioning, &solution, 5.0).unwrap();
        // Install the *whole* plan on a node (a station covering everything).
        let mobile = MobileShedder::install(0, plan.regions().to_vec(), 5.0);
        for (x, y) in probes {
            let p = Point::new(x * 4095.0, y * 4095.0);
            prop_assert_eq!(mobile.throttler_at(&p), plan.throttler_at(&p), "at {}", p);
        }
    }
}
