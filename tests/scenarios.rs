//! Standing regression battery for the adversarial scenario catalog
//! (docs/SCENARIOS.md): every named scenario must stay (1) valid at both
//! scales, (2) bit-for-bit deterministic — same seed ⇒ identical traffic
//! traces and identical `RunReport`s across repeated runs *and* across
//! sequential vs parallel policy lanes — and (3) pinned to golden
//! admitted/shed/accuracy tuples at the tiny scale, so a refactor that
//! silently changes what any scenario simulates fails loudly here.
//!
//! Everything is seeded; a failure is a regression, not flake.

use lira::prelude::*;
use proptest::prelude::*;

/// Full bitwise comparison of two run reports (the wall-clock
/// `adapt_micros` values are excluded; their count must still agree).
fn assert_reports_identical(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.reference_updates, b.reference_updates, "{ctx}");
    assert_eq!(a.num_queries, b.num_queries, "{ctx}");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{ctx}");
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        let ctx = format!("{ctx}/{}", oa.policy.name());
        assert_eq!(oa.policy, ob.policy, "{ctx}");
        assert_eq!(oa.metrics, ob.metrics, "{ctx}: metrics diverged");
        assert_eq!(oa.faults, ob.faults, "{ctx}: fault books diverged");
        assert_eq!(oa.updates_sent, ob.updates_sent, "{ctx}");
        assert_eq!(oa.updates_processed, ob.updates_processed, "{ctx}");
        assert_eq!(
            oa.processed_fraction.to_bits(),
            ob.processed_fraction.to_bits(),
            "{ctx}"
        );
        assert_eq!(oa.shed_skew.to_bits(), ob.shed_skew.to_bits(), "{ctx}");
        assert_eq!(oa.plan_skew.to_bits(), ob.plan_skew.to_bits(), "{ctx}");
        assert_eq!(oa.plan_regions, ob.plan_regions, "{ctx}");
        assert_eq!(oa.adapt_micros.len(), ob.adapt_micros.len(), "{ctx}");
    }
}

#[test]
fn catalog_names_are_unique_and_victims_are_real_policies() {
    // The exp_scenarios floor: the catalog must keep at least five named
    // scenarios, each with a unique kebab-case name, a non-empty stress
    // description, and an expected victim drawn from the actual roster.
    assert!(NamedScenario::ALL.len() >= 5);
    let policy_names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
    let mut seen = Vec::new();
    for named in NamedScenario::ALL {
        let name = named.name();
        assert!(!seen.contains(&name), "duplicate scenario name {name}");
        seen.push(name);
        assert!(
            name.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
            "{name} is not kebab-case"
        );
        assert!(!named.stresses().is_empty(), "{name} has no stress note");
        assert!(
            policy_names.contains(&named.expected_victim()),
            "{name} expects to hurt unknown policy {}",
            named.expected_victim()
        );
    }
}

#[test]
fn every_catalog_scenario_validates_at_both_scales() {
    for named in NamedScenario::ALL {
        named
            .scenario(3)
            .validate()
            .unwrap_or_else(|e| panic!("{} full scale: {e}", named.name()));
        named
            .tiny(3)
            .validate()
            .unwrap_or_else(|e| panic!("{} tiny scale: {e}", named.name()));
    }
}

#[test]
fn every_scenario_records_the_same_trace_for_the_same_seed() {
    // The trace level of the determinism contract: demand phases, fleet
    // scaling, and dead-zone carving must all replay identically.
    for named in NamedScenario::ALL {
        let sc = named.tiny(31);
        let mut s1 = SimSetup::build(&sc, false);
        let mut s2 = SimSetup::build(&sc, false);
        let t1 = s1.record_trace(&sc);
        let t2 = s2.record_trace(&sc);
        assert_eq!(t1.ticks(), t2.ticks(), "{}", named.name());
        assert_eq!(t1.num_cars(), t2.num_cars(), "{}", named.name());
        for tick in 0..=t1.ticks() {
            assert_eq!(
                t1.cars(tick),
                t2.cars(tick),
                "{} diverged at tick {tick}",
                named.name()
            );
        }
    }
}

#[test]
fn every_scenario_is_bit_identical_across_repeats_and_lane_modes() {
    // The report level of the contract, under both execution modes. Two
    // policies so `Parallelism::Auto` actually spawns lane threads.
    let policies = [Policy::Lira, Policy::RandomDrop];
    for named in NamedScenario::ALL {
        let sc = named.tiny(9);
        let seq = SimPipeline::new()
            .with_parallelism(Parallelism::Sequential)
            .run(&sc, &policies);
        let again = SimPipeline::new()
            .with_parallelism(Parallelism::Sequential)
            .run(&sc, &policies);
        let par = SimPipeline::new()
            .with_parallelism(Parallelism::Auto)
            .run(&sc, &policies);
        assert_reports_identical(&seq, &again, &format!("{} repeat", named.name()));
        assert_reports_identical(&seq, &par, &format!("{} seq-vs-par", named.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized extension of the determinism battery: any catalog
    /// scenario under any seed reproduces bit for bit.
    #[test]
    fn any_catalog_scenario_under_any_seed_reproduces(
        idx in 0usize..NamedScenario::ALL.len(),
        seed in 0u64..512,
    ) {
        let named = NamedScenario::ALL[idx];
        let sc = named.tiny(seed);
        let a = run_scenario(&sc, &[Policy::Lira]);
        let b = run_scenario(&sc, &[Policy::Lira]);
        assert_reports_identical(&a, &b, &format!("{} seed {seed}", named.name()));
    }
}

/// Golden expectations per policy: `(sent, processed, E^C_rr, E^P_rr)`.
type Golden = (u64, u64, f64, f64);

/// Runs `named` at the tiny scale under the battery seed (42, matching
/// `exp_scenarios --quick`) and pins each policy's admitted/shed volume
/// and accuracy against hand-checked golden values.
fn assert_golden(named: NamedScenario, golden: [Golden; 6]) {
    let sc = named.tiny(42);
    let report = run_scenario(&sc, &Policy::ALL);
    for (policy, (sent, processed, containment, position)) in Policy::ALL.iter().zip(golden) {
        let o = report.outcome(*policy).expect("policy ran");
        let ctx = format!("{}/{}", named.name(), policy.name());
        assert_eq!(o.updates_sent, sent, "{ctx}: updates_sent");
        assert_eq!(o.updates_processed, processed, "{ctx}: updates_processed");
        assert!(
            (o.metrics.mean_containment - containment).abs() < 1e-9,
            "{ctx}: E^C_rr {} vs golden {containment}",
            o.metrics.mean_containment
        );
        assert!(
            (o.metrics.mean_position - position).abs() < 1e-6,
            "{ctx}: E^P_rr {} vs golden {position}",
            o.metrics.mean_position
        );
    }
}

// Golden tuples harvested from a verified run and hand-checked for
// plausibility: source-actuated policies process everything they send;
// Random Drop sends ~the reference volume but processes ~z of it; the
// regional blackout is the only scenario where source-actuated sends
// outnumber processed updates (outage losses); LIRA's containment error
// stays an order of magnitude below Random Drop's everywhere. The two
// utility policies land in the source-actuated band (sends within ~10%
// of LIRA's) with position error between LIRA's and Uniform Delta's in
// most scenarios; Utility Model even edges out LIRA on paper-world and
// heterogeneous-fleet at this scale.

#[test]
fn golden_paper_world() {
    assert_golden(
        NamedScenario::PaperWorld,
        [
            (1092, 1092, 0.06840749120160884, 1.8747512301437144),
            (1024, 1024, 0.009259259259259259, 2.9384499966637545),
            (993, 993, 0.04916834255069549, 5.099596806336611),
            (1689, 825, 0.3450925254846824, 28.46073321623089),
            (1087, 1087, 0.0474537037037037, 5.462870331083036),
            (1046, 1046, 0.040393518518518516, 2.254290320447747),
        ],
    );
}

#[test]
fn golden_flash_crowd() {
    assert_golden(
        NamedScenario::FlashCrowd,
        [
            (1004, 1004, 0.013866843033509699, 1.5068105385526607),
            (918, 918, 0.019290123456790122, 2.1965849258849324),
            (937, 937, 0.020189210950080513, 3.1070282348029),
            (1662, 813, 0.21932627989788556, 30.46447000548443),
            (938, 938, 0.04615183792815372, 3.1182381364496323),
            (939, 939, 0.007539682539682541, 2.18104474113403),
        ],
    );
}

#[test]
fn golden_commute_cycle() {
    assert_golden(
        NamedScenario::CommuteCycle,
        [
            (963, 963, 0.04832741576162628, 2.707875320672942),
            (905, 905, 0.04885651629072681, 2.664274230014324),
            (895, 895, 0.03681947925368978, 4.074808918324386),
            (1629, 801, 0.12078419874472507, 15.314126073809717),
            (940, 940, 0.043080502181379376, 4.339576268607744),
            (948, 948, 0.02146860206070732, 2.3486148218816107),
        ],
    );
}

#[test]
fn golden_heterogeneous_fleet() {
    assert_golden(
        NamedScenario::HeterogeneousFleet,
        [
            (971, 971, 0.01129599567099567, 1.522015078223579),
            (976, 976, 0.011553030303030303, 1.7834598788976335),
            (905, 905, 0.006779100529100528, 3.6561390216762057),
            (1461, 721, 0.2754988067488067, 21.293903859800505),
            (1005, 1005, 0.011111111111111112, 2.4817788233010454),
            (988, 988, 0.009717712842712842, 1.4256192563205234),
        ],
    );
}

#[test]
fn golden_twin_cities() {
    assert_golden(
        NamedScenario::TwinCities,
        [
            (913, 913, 0.019868581710686974, 2.2096548419406155),
            (855, 855, 0.018406593406593407, 2.7290037235709677),
            (913, 913, 0.039033391884269075, 4.693128168783575),
            (1651, 809, 0.28121217638761503, 28.258595334666907),
            (824, 824, 0.015900327742433006, 2.127645445611861),
            (867, 867, 0.012851037851037849, 2.2194930559411685),
        ],
    );
}

#[test]
fn golden_regional_blackout() {
    assert_golden(
        NamedScenario::RegionalBlackout,
        [
            (892, 804, 0.07759131300797967, 6.581983241119098),
            (858, 787, 0.06842380734924594, 7.535316560601377),
            (868, 791, 0.060277439827878414, 8.371107369642871),
            (1586, 710, 0.4651388268164583, 50.014792158413115),
            (927, 867, 0.055172720797720794, 10.572698970240628),
            (902, 826, 0.08480989040199566, 9.23871216984898),
        ],
    );
}

#[test]
fn heterogeneous_fleet_caps_actually_bind() {
    // The pedestrian class's Δ⊣ cap must shrink thresholds in practice:
    // uncapping it (same fleet, infinite caps) must not *increase* the
    // update volume LIRA spends. More sends with caps = the cap binds.
    let capped = NamedScenario::HeterogeneousFleet.tiny(19);
    let mut uncapped = capped.clone();
    for class in &mut uncapped.fleet {
        class.delta_cap = f64::INFINITY;
    }
    let a = run_scenario(&capped, &[Policy::Lira]);
    let b = run_scenario(&uncapped, &[Policy::Lira]);
    assert!(
        a.outcomes[0].updates_sent > b.outcomes[0].updates_sent,
        "caps should force extra updates: capped {} vs uncapped {}",
        a.outcomes[0].updates_sent,
        b.outcomes[0].updates_sent
    );
}

#[test]
fn random_drop_skew_is_reported_and_source_actuated_skew_is_zero() {
    // shed_skew measures *server-actuated* drop placement: positive for
    // Random Drop on clustered traffic, identically zero for policies
    // that shed at the source. plan_skew is the mirror image: zero for
    // the single-threshold plans, positive for the region-aware ones.
    let sc = NamedScenario::PaperWorld.tiny(42);
    let report = run_scenario(&sc, &Policy::ALL);
    let drop = report.outcome(Policy::RandomDrop).unwrap();
    assert!(drop.shed_skew > 0.0, "skew {}", drop.shed_skew);
    assert_eq!(drop.plan_skew, 0.0);
    for policy in [
        Policy::Lira,
        Policy::LiraGrid,
        Policy::UniformDelta,
        Policy::UtilityGreedy,
        Policy::UtilityModel,
    ] {
        let o = report.outcome(policy).unwrap();
        assert_eq!(o.shed_skew, 0.0, "{}", policy.name());
    }
    for policy in [
        Policy::Lira,
        Policy::LiraGrid,
        Policy::UtilityGreedy,
        Policy::UtilityModel,
    ] {
        let o = report.outcome(policy).unwrap();
        assert!(o.plan_skew > 0.0, "{}", policy.name());
    }
    assert_eq!(report.outcome(Policy::UniformDelta).unwrap().plan_skew, 0.0);
}
