//! Paper-scale stress tests. Ignored by default (`cargo test -- --ignored`
//! runs them); each finishes in tens of seconds on a modern machine.
//! The shard-determinism tests at the bottom are *not* ignored: they
//! are the stress leg of the unified engine's acceptance battery and run
//! on a compact scenario.

use lira::prelude::*;

/// Bitwise comparison of the deterministic outcome fields (the
/// wall-clock `adapt_micros` values and telemetry timings are exempt).
fn assert_outcomes_identical(a: &PolicyOutcome, b: &PolicyOutcome, ctx: &str) {
    assert_eq!(a.policy, b.policy, "{ctx}");
    assert_eq!(a.metrics, b.metrics, "{ctx}: metrics diverged");
    assert_eq!(a.updates_sent, b.updates_sent, "{ctx}");
    assert_eq!(a.updates_processed, b.updates_processed, "{ctx}");
    assert_eq!(
        a.processed_fraction.to_bits(),
        b.processed_fraction.to_bits(),
        "{ctx}"
    );
    assert_eq!(a.plan_regions, b.plan_regions, "{ctx}");
    assert_eq!(a.faults, b.faults, "{ctx}: fault books");
}

#[test]
fn unified_runs_are_deterministic_across_repeats_and_shard_counts() {
    // Same seed, run twice at shards = 1 and twice at shards = 8, under
    // fault injection (delays, duplicates, loss) that stresses the
    // dirty-round and handoff machinery with stale out-of-order ingests.
    // All four reports must be bit-identical: repeat-determinism within a
    // shard count, and shard-count-independence across them.
    let mut sc = Scenario::small(113);
    sc.num_cars = 150;
    sc.warmup_s = 20.0;
    sc.duration_s = 60.0;
    let sc = sc.with_faults(FaultProfile {
        loss: LossModel::Iid { p: 0.1 },
        delay: DelayModel::Uniform {
            min_s: 0.0,
            max_s: 2.0,
        },
        duplicate_prob: 0.05,
        outages: vec![],
        retry: RetryPolicy {
            max_retries: 2,
            backoff_s: 0.5,
        },
    });
    let policies = [Policy::Lira, Policy::RandomDrop];
    let run = |shards: usize| {
        SimPipeline::new()
            .with_engine(EvalEngine::Unified { shards })
            .run(&sc, &policies)
    };
    let reports = [run(1), run(1), run(8), run(8)];
    let first = &reports[0];
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(first.reference_updates, r.reference_updates, "run {i}");
        for (oa, ob) in first.outcomes.iter().zip(&r.outcomes) {
            assert_outcomes_identical(oa, ob, &format!("run {i} {:?}", oa.policy));
        }
    }
    // The per-shard handoff counter is deterministic, so the two
    // shards = 8 runs must agree on it exactly (telemetry permitting).
    let handoffs = |r: &RunReport| r.outcomes[0].telemetry.counter("shard.handoffs");
    if reports[2].outcomes[0].telemetry.enabled {
        assert_eq!(handoffs(&reports[2]), handoffs(&reports[3]));
    }
}

#[test]
fn crossing_heavy_traffic_conserves_memberships_across_stripes() {
    // A tiling query partition over the whole space: every in-bounds
    // node belongs to exactly one tile, so summed tile memberships are a
    // conservation law. Fast horizontal traffic shuttles nodes across
    // stripe boundaries round after round; a lost or duplicated handoff
    // would break the count immediately.
    const NUM: usize = 64;
    let bounds = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    // 4×4 tiles of 250 m: 16 queries make a 16-column evaluation grid,
    // so 8 shards own two columns each.
    let queries: Vec<RangeQuery> = (0..16)
        .map(|id| {
            let (i, j) = (id % 4, id / 4);
            RangeQuery {
                id: id as u32,
                range: Rect::from_coords(
                    i as f64 * 250.0,
                    j as f64 * 250.0,
                    (i + 1) as f64 * 250.0,
                    (j + 1) as f64 * 250.0,
                ),
            }
        })
        .collect();
    let mut server = CqServer::new(bounds, NUM, 8).with_engine(EvalEngine::Unified { shards: 8 });
    server.register_queries(queries.iter().copied());
    for n in 0..NUM as u32 {
        let x = 100.0 + (n as f64 * 37.0) % 700.0;
        let y = 3.0 + (n as f64 * 61.0) % 990.0;
        let vx = if n % 2 == 0 { 150.0 } else { -100.0 };
        server.ingest(n, 0.0, Point::new(x, y), (vx, 1.0));
    }
    for round in 0..9 {
        let t = round as f64 * 0.5;
        // Mid-run re-report wave: a third of the fleet reverses course,
        // exercising the dirty-round claim/unclaim path mid-traffic.
        if round == 4 {
            for n in (0..NUM as u32).step_by(3) {
                let p = server.predict(n, t).unwrap();
                server.ingest(n, t, p, (-120.0, -1.0));
            }
        }
        let results = server.evaluate(t);
        let mut members: Vec<u32> = results
            .iter()
            .flat_map(|r| r.nodes.iter().copied())
            .collect();
        members.sort_unstable();
        let expected: Vec<u32> = (0..NUM as u32)
            .filter(|&n| server.predict(n, t).is_some_and(|p| bounds.contains(&p)))
            .collect();
        assert_eq!(
            members, expected,
            "round {round}: memberships lost or duplicated"
        );
    }
    let stats = server.shard_stats().expect("unified engine");
    let owned: usize = stats.iter().map(|s| s.nodes).sum();
    assert_eq!(owned, NUM, "every node owned by exactly one shard");
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    assert!(handoffs > 0, "crossing traffic must hand nodes off");
}

#[test]
#[ignore = "paper-scale: ~10k nodes, run with --ignored"]
fn paper_scale_run_is_stable_and_ordered() {
    let mut sc = Scenario::paper(7);
    sc.duration_s = 600.0; // 10 simulated minutes of the hour-long setup
    let report = run_scenario(&sc, &Policy::ALL);
    assert_eq!(report.num_cars, 10_000);
    assert_eq!(report.num_queries, 100);
    assert!(report.reference_updates > 100_000);
    let m = |p: Policy| report.outcome(p).unwrap().metrics;
    // The paper's ordering at full scale.
    assert!(m(Policy::Lira).mean_position <= m(Policy::LiraGrid).mean_position * 1.25);
    assert!(m(Policy::LiraGrid).mean_position < m(Policy::UniformDelta).mean_position);
    assert!(m(Policy::UniformDelta).mean_position < m(Policy::RandomDrop).mean_position);
    assert!(m(Policy::RandomDrop).mean_position > 5.0 * m(Policy::Lira).mean_position);
}

#[test]
#[ignore = "paper-scale adaptation timing, run with --ignored"]
fn paper_scale_adaptation_stays_lightweight() {
    // The paper's headline overhead claim: configuring LIRA for l = 250,
    // alpha = 128 takes ~40 ms on 2007 hardware; it must stay well under
    // that here, and even l = 4000 / alpha = 512 must stay under 500 ms.
    use std::time::Instant;
    let bounds = Rect::from_coords(0.0, 0.0, 14_142.0, 14_142.0);
    for (l, alpha, budget_ms) in [(250usize, 128usize, 40.0), (4000, 512, 500.0)] {
        let mut grid = StatsGrid::new(alpha, bounds).unwrap();
        grid.begin_snapshot();
        for i in 0..10_000 {
            let x = (i % 100) as f64 * 141.0 + 7.0;
            let y = (i / 100) as f64 * 141.0 + 7.0;
            grid.observe_node(&Point::new(x, y), 10.0 + (i % 20) as f64, 1.0);
        }
        for i in 0..100 {
            let x = (i % 10) as f64 * 1400.0;
            let y = (i / 10) as f64 * 1400.0;
            grid.observe_query(&Rect::from_coords(x, y, x + 1000.0, y + 1000.0));
        }
        grid.commit_snapshot();
        let mut config = LiraConfig::default();
        config.bounds = bounds;
        config.num_regions = l;
        config.alpha = alpha;
        let shedder = LiraShedder::new(config, 1000).unwrap();
        let _ = shedder.adapt_with_throttle(&grid, 0.5).unwrap(); // warm-up
        let started = Instant::now();
        let adaptation = shedder.adapt_with_throttle(&grid, 0.5).unwrap();
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(adaptation.plan.len(), l);
        assert!(
            ms < budget_ms,
            "(l = {l}, alpha = {alpha}): {ms:.1} ms exceeds the paper's {budget_ms} ms"
        );
    }
}

#[test]
#[ignore = "TPR-tree at 100k moving points, run with --ignored"]
fn tpr_tree_scales_to_large_fleets() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut tree = TprTree::new(60.0);
    let mut rng = SmallRng::seed_from_u64(3);
    for n in 0..100_000u32 {
        tree.update(MovingPoint {
            node: n,
            time: 0.0,
            origin: Point::new(rng.gen_range(0.0..14_142.0), rng.gen_range(0.0..14_142.0)),
            velocity: (rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)),
        });
    }
    assert_eq!(tree.len(), 100_000);
    tree.check_invariants();
    // A second full round of updates (every node re-reports).
    for n in 0..100_000u32 {
        tree.update(MovingPoint {
            node: n,
            time: 30.0,
            origin: Point::new(rng.gen_range(0.0..14_142.0), rng.gen_range(0.0..14_142.0)),
            velocity: (rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)),
        });
    }
    assert_eq!(tree.len(), 100_000);
    tree.check_invariants();
    // Queries stay correct after churn (spot-check against brute force by
    // counting through the public getter).
    let range = Rect::from_coords(3000.0, 3000.0, 5000.0, 5000.0);
    let hits = tree.query(&range, 45.0);
    let brute = (0..100_000u32)
        .filter(|&n| {
            tree.get(n)
                .is_some_and(|p| range.contains(&p.position_at(45.0)))
        })
        .count();
    assert_eq!(hits.len(), brute);
}
