//! Paper-scale stress tests. Ignored by default (`cargo test -- --ignored`
//! runs them); each finishes in tens of seconds on a modern machine.

use lira::prelude::*;

#[test]
#[ignore = "paper-scale: ~10k nodes, run with --ignored"]
fn paper_scale_run_is_stable_and_ordered() {
    let mut sc = Scenario::paper(7);
    sc.duration_s = 600.0; // 10 simulated minutes of the hour-long setup
    let report = run_scenario(&sc, &Policy::ALL);
    assert_eq!(report.num_cars, 10_000);
    assert_eq!(report.num_queries, 100);
    assert!(report.reference_updates > 100_000);
    let m = |p: Policy| report.outcome(p).unwrap().metrics;
    // The paper's ordering at full scale.
    assert!(m(Policy::Lira).mean_position <= m(Policy::LiraGrid).mean_position * 1.25);
    assert!(m(Policy::LiraGrid).mean_position < m(Policy::UniformDelta).mean_position);
    assert!(m(Policy::UniformDelta).mean_position < m(Policy::RandomDrop).mean_position);
    assert!(m(Policy::RandomDrop).mean_position > 5.0 * m(Policy::Lira).mean_position);
}

#[test]
#[ignore = "paper-scale adaptation timing, run with --ignored"]
fn paper_scale_adaptation_stays_lightweight() {
    // The paper's headline overhead claim: configuring LIRA for l = 250,
    // alpha = 128 takes ~40 ms on 2007 hardware; it must stay well under
    // that here, and even l = 4000 / alpha = 512 must stay under 500 ms.
    use std::time::Instant;
    let bounds = Rect::from_coords(0.0, 0.0, 14_142.0, 14_142.0);
    for (l, alpha, budget_ms) in [(250usize, 128usize, 40.0), (4000, 512, 500.0)] {
        let mut grid = StatsGrid::new(alpha, bounds).unwrap();
        grid.begin_snapshot();
        for i in 0..10_000 {
            let x = (i % 100) as f64 * 141.0 + 7.0;
            let y = (i / 100) as f64 * 141.0 + 7.0;
            grid.observe_node(&Point::new(x, y), 10.0 + (i % 20) as f64, 1.0);
        }
        for i in 0..100 {
            let x = (i % 10) as f64 * 1400.0;
            let y = (i / 10) as f64 * 1400.0;
            grid.observe_query(&Rect::from_coords(x, y, x + 1000.0, y + 1000.0));
        }
        grid.commit_snapshot();
        let mut config = LiraConfig::default();
        config.bounds = bounds;
        config.num_regions = l;
        config.alpha = alpha;
        let shedder = LiraShedder::new(config, 1000).unwrap();
        let _ = shedder.adapt_with_throttle(&grid, 0.5).unwrap(); // warm-up
        let started = Instant::now();
        let adaptation = shedder.adapt_with_throttle(&grid, 0.5).unwrap();
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(adaptation.plan.len(), l);
        assert!(
            ms < budget_ms,
            "(l = {l}, alpha = {alpha}): {ms:.1} ms exceeds the paper's {budget_ms} ms"
        );
    }
}

#[test]
#[ignore = "TPR-tree at 100k moving points, run with --ignored"]
fn tpr_tree_scales_to_large_fleets() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut tree = TprTree::new(60.0);
    let mut rng = SmallRng::seed_from_u64(3);
    for n in 0..100_000u32 {
        tree.update(MovingPoint {
            node: n,
            time: 0.0,
            origin: Point::new(rng.gen_range(0.0..14_142.0), rng.gen_range(0.0..14_142.0)),
            velocity: (rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)),
        });
    }
    assert_eq!(tree.len(), 100_000);
    tree.check_invariants();
    // A second full round of updates (every node re-reports).
    for n in 0..100_000u32 {
        tree.update(MovingPoint {
            node: n,
            time: 30.0,
            origin: Point::new(rng.gen_range(0.0..14_142.0), rng.gen_range(0.0..14_142.0)),
            velocity: (rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)),
        });
    }
    assert_eq!(tree.len(), 100_000);
    tree.check_invariants();
    // Queries stay correct after churn (spot-check against brute force by
    // counting through the public getter).
    let range = Rect::from_coords(3000.0, 3000.0, 5000.0, 5000.0);
    let hits = tree.query(&range, 45.0);
    let brute = (0..100_000u32)
        .filter(|&n| {
            tree.get(n)
                .is_some_and(|p| range.contains(&p.position_at(45.0)))
        })
        .count();
    assert_eq!(hits.len(), brute);
}
