//! Integration tests of the telemetry layer's two load-bearing promises
//! (DESIGN.md §10, docs/TELEMETRY.md): instrumentation never changes a
//! policy outcome, and every snapshot survives a JSON round trip.

use lira::prelude::*;
use lira_core::telemetry::{Level, COMPILED_OUT};

fn tiny(seed: u64) -> Scenario {
    let mut sc = Scenario::small(seed);
    sc.num_cars = 120;
    sc.duration_s = 40.0;
    sc.warmup_s = 10.0;
    sc
}

/// Telemetry-on and telemetry-off runs of the same scenario must produce
/// bit-identical policy outcomes: recording observes the simulation, it
/// never participates in it.
#[test]
fn telemetry_does_not_perturb_outcomes() {
    let sc = tiny(41);
    let on = SimPipeline::new()
        .with_telemetry(true)
        .run(&sc, &Policy::ALL);
    let off = SimPipeline::new()
        .with_telemetry(false)
        .run(&sc, &Policy::ALL);

    assert_eq!(on.reference_updates, off.reference_updates);
    for (a, b) in on.outcomes.iter().zip(&off.outcomes) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.updates_sent, b.updates_sent);
        assert_eq!(a.updates_processed, b.updates_processed);
        assert_eq!(a.plan_regions, b.plan_regions);
        // Float metrics compared exactly: same bits, not just close.
        assert_eq!(
            a.metrics.mean_containment.to_bits(),
            b.metrics.mean_containment.to_bits(),
            "{}: containment differs with telemetry",
            a.policy.name()
        );
        assert_eq!(
            a.metrics.mean_position.to_bits(),
            b.metrics.mean_position.to_bits(),
            "{}: position error differs with telemetry",
            a.policy.name()
        );
        // And the snapshots reflect the switch.
        assert!(!b.telemetry.enabled);
        assert_eq!(a.telemetry.enabled, !COMPILED_OUT);
    }
}

/// Every lane snapshot of a real run round-trips through its JSON form
/// unchanged, and the lane counters are consistent with the outcome.
#[test]
fn lane_snapshots_round_trip_and_reconcile() {
    let sc = tiny(43);
    let report = run_scenario(&sc, &Policy::ALL);
    for o in &report.outcomes {
        let back = TelemetrySnapshot::from_json(&o.telemetry.to_json()).unwrap();
        assert_eq!(back, o.telemetry, "{} snapshot round trip", o.policy.name());
        assert_eq!(o.telemetry.component, format!("lane:{}", o.policy.name()));
        if COMPILED_OUT {
            continue;
        }
        // The counters must agree with the outcome's own accounting.
        assert_eq!(
            o.telemetry.counter("lane.updates_sent"),
            Some(o.updates_sent),
            "{}",
            o.policy.name()
        );
        assert_eq!(
            o.telemetry.counter("lane.updates_admitted"),
            Some(o.updates_processed),
            "{}",
            o.policy.name()
        );
        // One adapt_us sample and one delta_m sample per region per
        // adaptation round.
        let adapts = o.telemetry.histogram("lane.adapt_us").unwrap();
        assert_eq!(adapts.count as usize, o.adapt_micros.len());
        assert!(o.telemetry.histogram("plan.delta_m").unwrap().count > 0);
    }
    let pipe = TelemetrySnapshot::from_json(&report.pipeline_telemetry.to_json()).unwrap();
    assert_eq!(pipe, report.pipeline_telemetry);
    if !COMPILED_OUT {
        for stage in [
            "pipeline.setup_us",
            "pipeline.trace_us",
            "pipeline.reference_us",
            "pipeline.lanes_us",
        ] {
            assert_eq!(
                report.pipeline_telemetry.histogram(stage).unwrap().count,
                1,
                "{stage} records exactly one sample per run"
            );
        }
    }
}

/// The closed-loop runner exports controller and queue telemetry, and an
/// overloaded configuration leaves operator-visible traces (gauges set,
/// latency samples, journal events) exactly as docs/TELEMETRY.md claims.
#[test]
fn adaptive_run_exports_controller_telemetry() {
    let mut sc = tiny(47);
    sc.num_cars = 200;
    sc.duration_s = 120.0;
    let cfg = AdaptiveConfig {
        service_rate: 40.0, // deliberately starved: forces shedding
        queue_capacity: 64,
        control_period_s: 20.0,
    };
    let report = run_adaptive(&sc, &cfg);
    let snap = &report.telemetry;
    let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(&back, snap);
    assert_eq!(snap.component, "adaptive");
    if COMPILED_OUT {
        return;
    }
    // The final control window's operating point is on the gauges.
    assert_eq!(snap.gauge("throtloop.z"), Some(report.final_throttle));
    assert!(snap.gauge("throtloop.lambda").is_some());
    assert!(snap.gauge("queue.depth").is_some());
    // Serviced updates left latency samples.
    assert!(snap.histogram("queue.service_latency_us").unwrap().count > 0);
    // The starved queue overflowed, and the overflow is visible both as
    // a counter and as warn-level journal events.
    let dropped: u64 = report.windows.iter().map(|w| w.dropped).sum();
    assert_eq!(snap.counter("queue.overflow_drops"), Some(dropped));
    if dropped > 0 {
        assert!(snap
            .events
            .iter()
            .any(|e| e.level == Level::Warn && e.message.contains("queue overflow")));
    }
}

/// Seed-merged sweep telemetry accumulates counters across seeds.
#[test]
fn sweep_merges_lane_telemetry_across_seeds() {
    use lira_bench::run_averaged;
    let seeds = [3u64, 5];
    let rows = run_averaged(&seeds, &[Policy::UniformDelta], tiny);
    assert_eq!(rows.len(), 1);
    let merged = &rows[0].1.telemetry;
    assert_eq!(merged.component, "lane:Uniform Delta");
    if COMPILED_OUT {
        return;
    }
    // The merged counter equals the sum of the per-seed runs.
    let total: u64 = seeds
        .iter()
        .map(|&s| {
            run_scenario(&tiny(s), &[Policy::UniformDelta]).outcomes[0]
                .telemetry
                .counter("lane.updates_sent")
                .unwrap()
        })
        .sum();
    assert_eq!(merged.counter("lane.updates_sent"), Some(total));
}
