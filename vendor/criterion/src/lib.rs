//! Offline, registry-free stand-in for the `criterion` 0.5 API subset this
//! workspace uses.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the bench binaries compiling and
//! producing *useful* numbers — per-iteration mean over a few timed
//! batches, printed one line per benchmark — without criterion's
//! statistical machinery (no outlier analysis, no HTML reports).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(600);
/// Target wall-clock spent warming up each benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(150);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        let mean_ns = run_benchmark(&label, f);
        self.results.push((label, mean_ns));
        self
    }

    /// `(label, mean ns/iter)` for every benchmark run so far, in run
    /// order. Lets harness binaries post-process timings (ratios, JSON
    /// reports) instead of scraping their own stdout.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    /// Drains and returns the collected results.
    pub fn take_results(&mut self) -> Vec<(String, f64)> {
        std::mem::take(&mut self.results)
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let mean_ns = run_benchmark(&label, f);
        self.criterion.results.push((label, mean_ns));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}
impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, recording the mean cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Measure in batches sized to amortize timer overhead.
        let batch = ((1_000_000.0 / per_call.max(1.0)).ceil() as u64).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE_TARGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) -> f64 {
    let mut bencher = Bencher {
        mean_ns: f64::NAN,
        iterations: 0,
    };
    f(&mut bencher);
    let mean = bencher.mean_ns;
    let human = if mean < 1_000.0 {
        format!("{mean:.1} ns")
    } else if mean < 1_000_000.0 {
        format!("{:.2} µs", mean / 1_000.0)
    } else {
        format!("{:.3} ms", mean / 1_000_000.0)
    };
    println!(
        "{label:<40} {human:>12}/iter  ({} iterations)",
        bencher.iterations
    );
    mean
}

/// Re-export for code written against criterion's `black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
