//! Offline, registry-free stand-in for the `proptest` 1.x API subset this
//! workspace uses.
//!
//! The build container has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the same *testing semantics* —
//! strategies compose with `prop_map`, `proptest!` runs each property over
//! `ProptestConfig::cases` randomized instances, `prop_assert!` failures
//! report the failing values, `prop_assume!` rejects a case — but it does
//! **not** shrink failures: the failing input is printed as generated.
//! Case generation is deterministic (a fixed seed per case index), so a
//! reported failure is reproducible by re-running the test.

pub mod strategy {
    //! Value-generation strategies.

    use core::ops::{Range, RangeInclusive};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(f64, f32, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` for the types the workspace generates.

    use crate::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for "any value of `T`".
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    macro_rules! any_full_range {
        ($($ty:ty),*) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
                }
            }
        )*};
    }
    any_full_range!(u32, u64, usize, i32, i64);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A length or range of lengths for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        low: usize,
        /// Exclusive.
        high: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                low: n,
                high: n + 1,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                low: r.start,
                high: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                low: *r.start(),
                high: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.low + 1 >= self.size.high {
                self.size.low
            } else {
                rng.gen_range(self.size.low..self.size.high)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test configuration and deterministic case RNG.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of randomized cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` randomized instances.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic generator for one case.
    pub fn case_rng(case: u32) -> SmallRng {
        // A fixed per-case seed keeps failures reproducible across runs.
        SmallRng::seed_from_u64(0x70726f_70746573u64 ^ ((case as u64) << 1))
    }
}

/// `prop::` namespace, as re-exported by the real prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs its body over randomized inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::test_runner::case_rng(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_case_rng,
                        );
                    )*
                    // `None` marks a `prop_assume!` rejection: skip the case.
                    let outcome: ::core::option::Option<()> =
                        (|| -> ::core::option::Option<()> {
                            $body
                            ::core::option::Option::Some(())
                        })();
                    let _ = outcome;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            panic!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            );
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::option::Option::None;
        }
    };
}
