//! Offline, registry-free stand-in for the `rand` 0.8 API surface this
//! workspace uses.
//!
//! The build container has no network access and no crates.io mirror, so
//! the real `rand` crate cannot be fetched. This shim reimplements — with
//! the *same algorithms* rand 0.8.5 ships on 64-bit targets — exactly the
//! subset the workspace consumes:
//!
//! * `rngs::SmallRng` = xoshiro256++ with the SplitMix64 `seed_from_u64`
//!   expansion, so seeded streams are bit-identical to the real crate;
//! * `Rng::gen::<f64>()` — the 53-bit multiply-based `Standard` sampler;
//! * `Rng::gen_range` over float and integer ranges — the `[1, 2)`
//!   mantissa trick for floats, widening-multiply rejection for integers;
//! * `Rng::gen_bool` — the fixed-point Bernoulli comparison.
//!
//! Keeping the streams identical matters: the statistical thresholds in
//! the integration tests were tuned against real `rand 0.8` output.

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;
    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Creates a generator from a `u64` seed (algorithm-specific expansion;
    /// `SmallRng` uses SplitMix64, matching rand 0.8).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    //! The distribution subset backing `Rng::gen` and `Rng::gen_bool`.

    use super::RngCore;

    /// Types that produce values of `T` from a source of randomness.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: full-range integers, `[0, 1)` floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // rand 0.8: one bit from the top of a u32 draw.
            (rng.next_u32() as i32) < 0
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // rand 0.8 "multiply-based" method: 53 random mantissa bits.
            let value = rng.next_u64() >> (64 - 53);
            (value as f64) * (1.0 / ((1u64 << 53) as f64))
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> (32 - 24);
            (value as f32) * (1.0 / ((1u32 << 24) as f32))
        }
    }

    /// The Bernoulli distribution backing `Rng::gen_bool` (fixed-point
    /// comparison, as in rand 0.8).
    #[derive(Debug, Clone, Copy)]
    pub struct Bernoulli {
        p_int: u64,
    }

    const ALWAYS_TRUE: u64 = u64::MAX;
    const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

    impl Bernoulli {
        /// A distribution that is true with probability `p ∈ [0, 1]`.
        pub fn new(p: f64) -> Result<Bernoulli, &'static str> {
            if !(0.0..1.0).contains(&p) {
                if p == 1.0 {
                    return Ok(Bernoulli { p_int: ALWAYS_TRUE });
                }
                return Err("probability outside [0, 1]");
            }
            Ok(Bernoulli {
                p_int: (p * SCALE) as u64,
            })
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            if self.p_int == ALWAYS_TRUE {
                return true;
            }
            rng.next_u64() < self.p_int
        }
    }
}

use distributions::{Bernoulli, Distribution, Standard};

/// Types samplable by [`Rng::gen_range`] (mirrors `rand`'s blanket
/// `SampleRange` impls over one `SampleUniform` trait, which is what lets
/// the compiler unify un-suffixed literal ranges).
pub trait SampleUniform: PartialOrd + Sized + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(low, high, rng)
    }
}

macro_rules! float_uniform_impls {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_one:expr) => {
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let scale = high - low;
                loop {
                    // A value in [1, 2): random mantissa under a fixed
                    // exponent, then shift down to [0, 1).
                    let bits: $uty = <$uty>::sample_raw(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(bits | $exponent_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    // `res == high` is possible only through rounding at the
                    // very top of the range; resample in that rare case.
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                if low == high {
                    return low;
                }
                // Largest achievable `value0_1`, so the top maps onto `high`.
                let max_bits: $uty = <$uty>::MAX >> $bits_to_discard;
                let max_rand = <$ty>::from_bits(max_bits | $exponent_one) - 1.0;
                let scale = (high - low) / max_rand;
                loop {
                    let bits: $uty = <$uty>::sample_raw(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(bits | $exponent_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    };
}

/// Raw full-width draws used by the samplers above.
trait SampleRaw: Sized {
    fn sample_raw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
impl SampleRaw for u32 {
    fn sample_raw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl SampleRaw for u64 {
    fn sample_raw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

float_uniform_impls!(f64, u64, 64 - 52, 0x3FF0_0000_0000_0000u64);
float_uniform_impls!(f32, u32, 32 - 23, 0x3F80_0000u32);

macro_rules! int_uniform_impls {
    ($($ty:ty => $uty:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let range = (high.wrapping_sub(low)) as $uty;
                // Widening-multiply rejection (rand 0.8 `sample_single`):
                // accept when the low product word falls inside the unbiased
                // zone for this range.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $uty = <$uty>::sample_raw(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let range = (high.wrapping_sub(low) as $uty).wrapping_add(1);
                if range == 0 {
                    // The range spans the whole type.
                    return <$uty>::sample_raw(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $uty = <$uty>::sample_raw(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

/// Widening multiplies used by the rejection samplers.
trait WideningMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self)
    where
        Self: Sized;
}
impl WideningMul for u64 {
    fn wmul(self, other: u64) -> (u64, u64) {
        let full = (self as u128) * (other as u128);
        ((full >> 64) as u64, full as u64)
    }
}
impl WideningMul for u32 {
    fn wmul(self, other: u32) -> (u32, u32) {
        let full = (self as u64) * (other as u64);
        ((full >> 32) as u32, full as u32)
    }
}
fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    a.wmul(b)
}

int_uniform_impls! {
    u32 => u32,
    i32 => u32,
    u64 => u64,
    i64 => u64,
    usize => u64,
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`; panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        Bernoulli::new(p)
            .expect("gen_bool probability within [0, 1]")
            .sample(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generator this workspace uses: `SmallRng`.

    use super::{RngCore, SeedableRng};

    /// A small, fast generator. On 64-bit targets rand 0.8's `SmallRng` is
    /// xoshiro256++, reproduced here state-for-state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have weak linear structure; rand
            // takes the upper half.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as in rand 0.8's xoshiro seeding.
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the canonical C reference with
        // state {1, 2, 3, 4}.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_matches_rand_08() {
        // rand 0.8.5: SmallRng::seed_from_u64(42).next_u64() on x86_64.
        let mut rng = SmallRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 15021278609987233951);
    }

    #[test]
    fn samplers_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let r = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&r));
            let i = rng.gen_range(5usize..17);
            assert!((5..17).contains(&i));
            let j = rng.gen_range(0u32..3);
            assert!(j < 3);
            let k = rng.gen_range(2.0f64..=4.0);
            assert!((2.0..=4.0).contains(&k));
        }
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "gen_bool(0.3) hit {hits}");
    }

    #[test]
    fn u64_seed_streams_differ() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
